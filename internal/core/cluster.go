package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"relidev/internal/availcopy"
	"relidev/internal/block"
	"relidev/internal/naiveac"
	"relidev/internal/obs"
	"relidev/internal/protocol"
	"relidev/internal/repair"
	"relidev/internal/scheme"
	"relidev/internal/simnet"
	"relidev/internal/site"
	"relidev/internal/store"
	"relidev/internal/voting"
)

// SchemeKind selects a consistency control algorithm.
type SchemeKind int

// The three algorithms of §3.
const (
	Voting SchemeKind = iota + 1
	AvailableCopy
	NaiveAvailableCopy
)

// String implements fmt.Stringer.
func (k SchemeKind) String() string {
	switch k {
	case Voting:
		return "voting"
	case AvailableCopy:
		return "available-copy"
	case NaiveAvailableCopy:
		return "naive"
	default:
		return fmt.Sprintf("scheme(%d)", int(k))
	}
}

// ClusterConfig parameterises an in-process replica cluster.
type ClusterConfig struct {
	// Sites is the number of replica sites (1..protocol.MaxSites).
	Sites int
	// Geometry is the device shape; zero value defaults to 512x128.
	Geometry block.Geometry
	// Scheme selects the consistency algorithm.
	Scheme SchemeKind
	// Mode selects the §5 network flavour; zero defaults to Multicast.
	Mode simnet.Mode
	// Weights optionally assigns per-site voting weights (thousandths).
	// Nil assigns 1000 everywhere with the §4.1 tie-breaking nudge (+1 to
	// site 0) when the site count is even.
	Weights []int64
	// Witnesses makes the last Witnesses sites voting witnesses ([10]):
	// they vote with per-block version numbers but store no data, cutting
	// the storage cost of a copy to a version table. Valid only with the
	// Voting scheme, and at least one data site must remain.
	Witnesses int
	// NewStore optionally builds each site's stable storage for data
	// sites; nil uses in-memory stores. Witness sites always use
	// version-only stores.
	NewStore func(id protocol.SiteID, geom block.Geometry) (store.Store, error)
	// VotingOptions are passed to voting controllers.
	VotingOptions []voting.Option
	// AvailCopyOptions are passed to available copy controllers.
	AvailCopyOptions []availcopy.Option
	// Latency simulates a per-round-trip network delay on the simulated
	// network; zero keeps it instantaneous. Traffic accounting is
	// unaffected.
	Latency time.Duration
	// WrapTransport optionally decorates the cluster's transport before
	// the controllers see it — the hook the chaos harness uses to splice
	// a fault-injecting faultnet.Network between the controllers and the
	// simulated network. Applied once, to the shared transport, not per
	// site. Nil leaves the transport bare.
	WrapTransport func(protocol.Transport) protocol.Transport
	// Observer, when set, instruments the cluster: per-scheme/site/op
	// metrics and optional protocol traces in the controllers and
	// replicas, plus a metering decorator applied outermost over the
	// (possibly WrapTransport-decorated) transport so it observes
	// exactly what the controllers see, fault injection included. Nil
	// leaves the cluster unmetered at zero overhead.
	Observer *obs.Observer
	// Repair, when set, enables the background anti-entropy engine
	// (DESIGN.md §13): after a restarted site completes scheme recovery,
	// DriveRecovery runs a rate-limited repairer that streams the site's
	// stale blocks from up-to-date peers, bounding its time to freshness
	// instead of waiting for the workload to touch every block. Nil
	// keeps the paper's lazy-only behaviour.
	Repair *repair.Policy
	// RecoveryPageBlocks, when positive, makes the schemes' eager
	// recovery exchange paged: at most this many blocks per
	// RecoveryReply, continued under a resume token. Zero keeps the
	// legacy single-shot Figure 5 shape the §5 traffic tests pin.
	RecoveryPageBlocks int
}

func (c *ClusterConfig) applyDefaults() error {
	if c.Sites <= 0 || c.Sites > protocol.MaxSites {
		return fmt.Errorf("core: cluster needs 1..%d sites, got %d", protocol.MaxSites, c.Sites)
	}
	if c.Geometry == (block.Geometry{}) {
		c.Geometry = block.Geometry{BlockSize: 512, NumBlocks: 128}
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch c.Scheme {
	case Voting, AvailableCopy, NaiveAvailableCopy:
	default:
		return fmt.Errorf("core: unknown scheme %v", c.Scheme)
	}
	if c.Mode == 0 {
		c.Mode = simnet.Multicast
	}
	if c.Weights == nil {
		c.Weights = make([]int64, c.Sites)
		for i := range c.Weights {
			c.Weights[i] = 1000
		}
		if c.Sites%2 == 0 {
			// §4.1: with an even number of equally weighted copies, draws
			// occur whenever half the copies are down; adjust one copy's
			// weight by a small quantity to break ties.
			c.Weights[0]++
		}
	}
	if len(c.Weights) != c.Sites {
		return fmt.Errorf("core: %d weights for %d sites", len(c.Weights), c.Sites)
	}
	if c.NewStore == nil {
		c.NewStore = func(_ protocol.SiteID, geom block.Geometry) (store.Store, error) {
			return store.NewMem(geom)
		}
	}
	if c.Witnesses < 0 || c.Witnesses >= c.Sites {
		return fmt.Errorf("core: %d witnesses need at least one data site among %d sites", c.Witnesses, c.Sites)
	}
	if c.Witnesses > 0 && c.Scheme != Voting {
		return fmt.Errorf("core: witnesses require the voting scheme, not %v", c.Scheme)
	}
	return nil
}

// Cluster is an in-process set of replica sites joined by a simulated
// network. It owns site lifecycle: failing a site, restarting it, and
// driving the scheme's recovery procedure — including re-driving it for
// sites whose recovery had to wait (comatose) whenever membership
// changes.
type Cluster struct {
	cfg       ClusterConfig
	net       *simnet.Network
	transport protocol.Transport // cl.net after WrapTransport decoration
	replicas  []*site.Replica
	ctrls     []scheme.Controller
	devices   []*ReliableDevice
	repairers []*repair.Repairer // nil when cfg.Repair is nil

	// repairLog accumulates background repair outcomes for harnesses
	// (chaos reads and drains it between events).
	repairMu  sync.Mutex
	repairLog []RepairOutcome
}

// RepairOutcome records one completed background repair run driven by
// DriveRecovery: which site repaired and how it went. Err is nil on
// full freshness, or repair.ErrNoDonors / repair.ErrIncomplete when
// staleness remains (the site stays available; a later recovery event
// retries).
type RepairOutcome struct {
	Site   protocol.SiteID
	Result repair.Result
	Err    error
}

// NewCluster builds and starts a cluster; all sites begin available with
// freshly formatted (all-zero) stores.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:      cfg,
		net:      simnet.New(cfg.Mode),
		replicas: make([]*site.Replica, cfg.Sites),
		ctrls:    make([]scheme.Controller, cfg.Sites),
		devices:  make([]*ReliableDevice, cfg.Sites),
	}
	cl.net.SetLatency(cfg.Latency)
	ids := make([]protocol.SiteID, cfg.Sites)
	for i := range ids {
		ids[i] = protocol.SiteID(i)
	}
	for i := range ids {
		witness := i >= cfg.Sites-cfg.Witnesses
		var st store.Store
		var err error
		if witness {
			st, err = store.NewVersionOnly(cfg.Geometry)
		} else {
			st, err = cfg.NewStore(ids[i], cfg.Geometry)
		}
		if err != nil {
			return nil, fmt.Errorf("core: store for %v: %w", ids[i], err)
		}
		rep, err := site.New(site.Config{ID: ids[i], Store: st, Weight: cfg.Weights[i], Witness: witness})
		if err != nil {
			return nil, err
		}
		cl.replicas[i] = rep
		cl.net.Attach(ids[i], rep)
	}
	cl.transport = cl.net
	if cfg.WrapTransport != nil {
		if cl.transport = cfg.WrapTransport(cl.net); cl.transport == nil {
			return nil, errors.New("core: WrapTransport returned nil")
		}
	}
	// Metering wraps outermost so it sees exactly what the controllers
	// send — including traffic the WrapTransport decorator (fault
	// injection) will fail. A nil Observer leaves the transport as-is.
	cl.transport = obs.WrapTransport(cfg.Observer, "sim", cl.transport, ids)
	for i := range ids {
		env := scheme.Env{
			Self:      cl.replicas[i],
			Transport: cl.transport,
			Sites:     ids,
			Weights:   cfg.Weights,
			Obs:       cfg.Observer.SchemeSite(cfg.Scheme.String(), ids[i]),
		}
		if env.Obs != nil {
			cl.replicas[i].SetWTransitionHook(env.Obs.WTransition)
		}
		if hook := cfg.Observer.HandleHook(cfg.Scheme.String(), ids[i]); hook != nil {
			cl.replicas[i].SetHandleHook(hook)
		}
		ctrl, err := buildController(cfg, env)
		if err != nil {
			return nil, err
		}
		cl.ctrls[i] = ctrl
		dev, err := NewReliableDevice(cfg.Geometry, ctrl)
		if err != nil {
			return nil, err
		}
		cl.devices[i] = dev
	}
	if err := cl.buildRepairers(ids); err != nil {
		return nil, err
	}
	return cl, nil
}

// buildRepairers (re)constructs the per-site background repairers over
// the current membership; a no-op when repair is disabled. Witnesses
// get no repairer — they hold no data to freshen.
func (cl *Cluster) buildRepairers(ids []protocol.SiteID) error {
	if cl.cfg.Repair == nil {
		cl.repairers = nil
		return nil
	}
	cl.repairers = make([]*repair.Repairer, len(ids))
	for i, id := range ids {
		if cl.replicas[i].Witness() {
			continue
		}
		pol := *cl.cfg.Repair
		// Distinct per-site jitter streams, stable across runs.
		pol.Seed ^= uint64(id+1) * 0x9e3779b97f4a7c15
		rp, err := repair.New(repair.Config{
			Self:      cl.replicas[i],
			Transport: cl.transport,
			Peers:     remotesOf(ids, id),
			Policy:    pol,
			Obs:       cl.cfg.Observer.SchemeSite(cl.cfg.Scheme.String(), id),
			RepairObs: cl.cfg.Observer.Repair(cl.cfg.Scheme.String(), id),
		})
		if err != nil {
			return fmt.Errorf("core: repairer for %v: %w", id, err)
		}
		cl.repairers[i] = rp
	}
	return nil
}

func remotesOf(ids []protocol.SiteID, self protocol.SiteID) []protocol.SiteID {
	out := make([]protocol.SiteID, 0, len(ids)-1)
	for _, id := range ids {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

func buildController(cfg ClusterConfig, env scheme.Env) (scheme.Controller, error) {
	switch cfg.Scheme {
	case Voting:
		opts := cfg.VotingOptions
		if cfg.RecoveryPageBlocks > 0 {
			opts = append(opts[:len(opts):len(opts)], voting.WithPagedRecovery(cfg.RecoveryPageBlocks))
		}
		return voting.New(env, opts...)
	case AvailableCopy:
		opts := cfg.AvailCopyOptions
		if cfg.RecoveryPageBlocks > 0 {
			opts = append(opts[:len(opts):len(opts)], availcopy.WithPagedRecovery(cfg.RecoveryPageBlocks))
		}
		return availcopy.New(env, opts...)
	case NaiveAvailableCopy:
		return naiveac.New(env)
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", cfg.Scheme)
	}
}

// Sites returns the number of sites.
func (cl *Cluster) Sites() int { return cl.cfg.Sites }

// Scheme returns the consistency algorithm in use.
func (cl *Cluster) Scheme() SchemeKind { return cl.cfg.Scheme }

// Geometry returns the device shape.
func (cl *Cluster) Geometry() block.Geometry { return cl.cfg.Geometry }

// Network exposes the simulated network (traffic statistics, test-only
// partitions).
func (cl *Cluster) Network() *simnet.Network { return cl.net }

// Device returns the reliable device served at the given site. A file
// system mounted on it needs no knowledge of replication.
func (cl *Cluster) Device(id protocol.SiteID) (*ReliableDevice, error) {
	if err := cl.check(id); err != nil {
		return nil, err
	}
	return cl.devices[id], nil
}

// Replica exposes a site's replica (tests and examples).
func (cl *Cluster) Replica(id protocol.SiteID) (*site.Replica, error) {
	if err := cl.check(id); err != nil {
		return nil, err
	}
	return cl.replicas[id], nil
}

// Controller exposes a site's consistency controller (tests and benches).
func (cl *Cluster) Controller(id protocol.SiteID) (scheme.Controller, error) {
	if err := cl.check(id); err != nil {
		return nil, err
	}
	return cl.ctrls[id], nil
}

// State returns a site's current state.
func (cl *Cluster) State(id protocol.SiteID) (protocol.SiteState, error) {
	if err := cl.check(id); err != nil {
		return 0, err
	}
	return cl.replicas[id].State(), nil
}

// States returns every site's state, indexed by site id.
func (cl *Cluster) States() []protocol.SiteState {
	out := make([]protocol.SiteState, cl.cfg.Sites)
	for i, r := range cl.replicas {
		out[i] = r.State()
	}
	return out
}

// AvailableCount returns the number of available sites.
func (cl *Cluster) AvailableCount() int {
	n := 0
	for _, r := range cl.replicas {
		if r.State() == protocol.StateAvailable {
			n++
		}
	}
	return n
}

func (cl *Cluster) check(id protocol.SiteID) error {
	if id < 0 || int(id) >= cl.cfg.Sites {
		return fmt.Errorf("core: no site %v in a %d-site cluster", id, cl.cfg.Sites)
	}
	return nil
}

// Fail crashes a site: fail-stop, stable storage intact (§2). Failing a
// site that is already down is rejected — a chaos schedule replaying
// Poisson events must be able to tell an applied crash from a no-op.
func (cl *Cluster) Fail(id protocol.SiteID) error {
	if err := cl.check(id); err != nil {
		return err
	}
	if cl.replicas[id].State() == protocol.StateFailed {
		return fmt.Errorf("core: fail of %v which is already failed", id)
	}
	//relidev:allow locking: crash injection models the fail-stop event itself (§3); it deliberately bypasses the protocol's critical sections, and Replica serializes the state flip internally
	cl.replicas[id].SetState(protocol.StateFailed)
	cl.net.SetUp(id, false)
	return nil
}

// Restart brings a failed site's process back up (state comatose) and
// drives recovery: first for the restarted site, then for every other
// comatose site that may now be able to proceed (e.g. once the last site
// of a naive cluster returns, all of them recover in one cascade).
func (cl *Cluster) Restart(ctx context.Context, id protocol.SiteID) error {
	if err := cl.check(id); err != nil {
		return err
	}
	if cl.replicas[id].State() != protocol.StateFailed {
		return fmt.Errorf("core: restart of %v which is %v", id, cl.replicas[id].State())
	}
	//relidev:allow locking: process restart precedes any protocol activity on the site; the replica is comatose and rejects operations until Recover runs under its own exclusion
	cl.replicas[id].SetState(protocol.StateComatose)
	cl.net.SetUp(id, true)
	return cl.DriveRecovery(ctx)
}

// DriveRecovery repeatedly runs the scheme's recovery procedure on every
// comatose site until no further site can make progress. Sites whose
// recovery must still wait stay comatose; that is not an error.
//
// When background repair is configured, every site that completed
// scheme recovery here then runs one anti-entropy pass (DESIGN.md §13):
// scheme recovery readmits the site cheaply (the paper's lazy trick),
// the repairer erases the staleness that readmission left behind.
// Repair shortfalls — no donor reachable, donors exhausted — are
// recorded, not errors: the site is already available and a later
// recovery event retries.
func (cl *Cluster) DriveRecovery(ctx context.Context) error {
	var readmitted []int
	for {
		progress := false
		for i, r := range cl.replicas {
			if r.State() != protocol.StateComatose {
				continue
			}
			err := cl.ctrls[i].Recover(ctx)
			switch {
			case err == nil:
				progress = true
				readmitted = append(readmitted, i)
			case errors.Is(err, scheme.ErrAwaitingSites):
				// Stay comatose; maybe a later recovery unblocks it.
			default:
				return fmt.Errorf("core: recovery of %v: %w", r.ID(), err)
			}
		}
		if !progress {
			break
		}
	}
	for _, i := range readmitted {
		if cl.repairers == nil || cl.repairers[i] == nil {
			continue
		}
		res, err := cl.repairers[i].Run(ctx)
		cl.repairMu.Lock()
		cl.repairLog = append(cl.repairLog, RepairOutcome{Site: cl.replicas[i].ID(), Result: res, Err: err})
		cl.repairMu.Unlock()
		if err != nil && ctx.Err() != nil {
			return fmt.Errorf("core: repair of %v: %w", cl.replicas[i].ID(), err)
		}
	}
	return nil
}

// RepairSite runs one on-demand anti-entropy pass on a site (manual
// freshening, harness retries). It requires repair to be configured.
func (cl *Cluster) RepairSite(ctx context.Context, id protocol.SiteID) (repair.Result, error) {
	if err := cl.check(id); err != nil {
		return repair.Result{}, err
	}
	if cl.repairers == nil || cl.repairers[id] == nil {
		return repair.Result{}, fmt.Errorf("core: site %v has no repairer configured", id)
	}
	return cl.repairers[id].Run(ctx)
}

// TakeRepairOutcomes drains the log of background repair runs driven by
// DriveRecovery since the previous call, in completion order.
func (cl *Cluster) TakeRepairOutcomes() []RepairOutcome {
	cl.repairMu.Lock()
	defer cl.repairMu.Unlock()
	out := cl.repairLog
	cl.repairLog = nil
	return out
}
