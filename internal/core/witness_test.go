package core

import (
	"context"
	"errors"
	"testing"

	"relidev/internal/block"
	"relidev/internal/voting"
)

func TestClusterWitnessValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Sites: 3, Scheme: AvailableCopy, Witnesses: 1}); err == nil {
		t.Fatal("witnesses accepted for non-voting scheme")
	}
	if _, err := NewCluster(ClusterConfig{Sites: 3, Scheme: Voting, Witnesses: 3}); err == nil {
		t.Fatal("all-witness cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Sites: 3, Scheme: Voting, Witnesses: -1}); err == nil {
		t.Fatal("negative witnesses accepted")
	}
}

func TestClusterWithWitnesses(t *testing.T) {
	ctx := context.Background()
	cl, err := NewCluster(ClusterConfig{
		Sites:     3,
		Geometry:  block.Geometry{BlockSize: 32, NumBlocks: 4},
		Scheme:    Voting,
		Witnesses: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last site is a witness.
	rep2, _ := cl.Replica(2)
	if !rep2.Witness() {
		t.Fatal("site 2 should be a witness")
	}
	rep0, _ := cl.Replica(0)
	if rep0.Witness() {
		t.Fatal("site 0 should be a data site")
	}

	dev, _ := cl.Device(0)
	if err := dev.WriteBlock(ctx, 1, pad(cl, "with witness")); err != nil {
		t.Fatal(err)
	}
	// Works with a data site down (data + witness quorum).
	if err := cl.Fail(1); err != nil {
		t.Fatal(err)
	}
	got, err := dev.ReadBlock(ctx, 1)
	if err != nil || string(got[:12]) != "with witness" {
		t.Fatalf("read = %q, %v", got[:12], err)
	}
	// The device at the witness site serves reads by remote fetch.
	devW, _ := cl.Device(2)
	got, err = devW.ReadBlock(ctx, 1)
	if err != nil || string(got[:12]) != "with witness" {
		t.Fatalf("witness-site read = %q, %v", got[:12], err)
	}
	// With both data sites down only the witness is up: 1 of 3 is not
	// even a quorum.
	if err := cl.Fail(0); err != nil {
		t.Fatal(err)
	}
	if _, err := devW.ReadBlock(ctx, 1); err == nil {
		t.Fatal("read with only a witness up succeeded")
	}
}

func TestWitnessMajorityCannotServeData(t *testing.T) {
	// 1 data + 2 witnesses: the witnesses alone form a quorum, but a
	// quorum without a data site must refuse service.
	ctx := context.Background()
	cl, err := NewCluster(ClusterConfig{
		Sites:     3,
		Geometry:  block.Geometry{BlockSize: 32, NumBlocks: 4},
		Scheme:    Voting,
		Witnesses: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cl.Device(0)
	if err := dev.WriteBlock(ctx, 0, pad(cl, "solo data")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Fail(0); err != nil {
		t.Fatal(err)
	}
	devW, _ := cl.Device(1)
	if _, err := devW.ReadBlock(ctx, 0); !errors.Is(err, voting.ErrNoCurrentCopy) {
		t.Fatalf("witness-majority read = %v, want ErrNoCurrentCopy", err)
	}
	if err := devW.WriteBlock(ctx, 0, pad(cl, "x")); !errors.Is(err, voting.ErrNoCurrentCopy) {
		t.Fatalf("witness-majority write = %v, want ErrNoCurrentCopy", err)
	}
}
