package core

import (
	"context"
	"fmt"

	"relidev/internal/protocol"
	"relidev/internal/scheme"
	"relidev/internal/site"
	"relidev/internal/store"
)

// Reconfiguration: the paper's introduction notes that "availability and
// reliability of a file can be made arbitrarily high by increasing the
// order of replication". Grow adds a copy to a live cluster; Remove
// retires one. Both rebuild the consistency controllers over the new
// membership and leave every issued device handle valid.

// Grow adds one replica site to the cluster and drives its recovery: the
// new site starts comatose with an empty store and is brought current by
// the scheme's ordinary recovery procedure (voting sites join
// immediately and repair lazily; available copy sites repair from any
// available copy). It returns the new site's id.
//
// The new site is a full data copy with weight 1000; witness layouts are
// fixed at construction.
func (cl *Cluster) Grow(ctx context.Context) (protocol.SiteID, error) {
	if cl.cfg.Sites >= protocol.MaxSites {
		return 0, fmt.Errorf("core: cluster already has the maximum of %d sites", protocol.MaxSites)
	}
	id := protocol.SiteID(cl.cfg.Sites)
	var st store.Store
	var err error
	st, err = cl.cfg.NewStore(id, cl.cfg.Geometry)
	if err != nil {
		return 0, fmt.Errorf("core: store for new site %v: %w", id, err)
	}
	rep, err := site.New(site.Config{
		ID:           id,
		Store:        st,
		Weight:       1000,
		InitialState: protocol.StateComatose,
	})
	if err != nil {
		st.Close()
		return 0, err
	}
	cl.cfg.Sites++
	cl.cfg.Weights = append(cl.cfg.Weights, 1000)
	cl.replicas = append(cl.replicas, rep)
	cl.net.Attach(id, rep)

	// Placeholder device slot; rebuildControllers fills in the engine.
	cl.ctrls = append(cl.ctrls, nil)
	cl.devices = append(cl.devices, &ReliableDevice{geom: cl.cfg.Geometry})
	if err := cl.rebuildControllers(); err != nil {
		return 0, err
	}
	// Bring the newcomer (and anything it unblocks) in.
	if err := cl.DriveRecovery(ctx); err != nil {
		return 0, err
	}
	return id, nil
}

// Remove retires the highest-numbered site from the cluster (shrinking
// is last-in-first-out so that site ids stay dense). The retired site's
// identity is also scrubbed from every remaining was-available set, so
// an available copy recovery never waits for a site that no longer
// exists.
//
// Removing a site that holds data no remaining site has — the only
// available copy, or the last site to fail while others are comatose —
// would silently discard its writes; Remove refuses these cases unless
// force is set.
func (cl *Cluster) Remove(ctx context.Context, force bool) error {
	if cl.cfg.Sites <= 1 {
		return fmt.Errorf("core: cannot remove the only site")
	}
	id := protocol.SiteID(cl.cfg.Sites - 1)
	victim := cl.replicas[id]

	if !force {
		availElsewhere := 0
		for _, r := range cl.replicas[:id] {
			if r.State() == protocol.StateAvailable {
				availElsewhere++
			}
		}
		if availElsewhere == 0 {
			return fmt.Errorf("core: removing %v could discard the most recent data (no other available site); use force to override", id)
		}
	}

	// Fail-stop the victim and detach it.
	//relidev:allow locking: administrative removal is a deliberate fail-stop of the victim (§3); the site leaves the configuration rather than racing its own operations
	victim.SetState(protocol.StateFailed)
	cl.net.SetUp(id, false)
	cl.cfg.Sites--
	cl.cfg.Weights = cl.cfg.Weights[:cl.cfg.Sites]
	cl.replicas = cl.replicas[:cl.cfg.Sites]
	cl.ctrls = cl.ctrls[:cl.cfg.Sites]
	cl.devices = cl.devices[:cl.cfg.Sites]

	// Scrub the retired identity from every remaining was-available set
	// (an administrative stable-storage edit, as reconfiguring the
	// replication order would be in practice).
	for _, r := range cl.replicas {
		if w := r.WasAvailable(); w.Has(id) {
			//relidev:allow locking: administrative stable-storage edit during reconfiguration; controllers are rebuilt immediately after, so no in-flight operation observes the interim set
			if err := r.SetWasAvailable(w.Remove(id)); err != nil {
				return err
			}
		}
	}
	if err := cl.rebuildControllers(); err != nil {
		return err
	}
	return cl.DriveRecovery(ctx)
}

// rebuildControllers reconstructs every site's consistency engine over
// the current membership and swaps them into the live devices.
func (cl *Cluster) rebuildControllers() error {
	ids := make([]protocol.SiteID, cl.cfg.Sites)
	for i := range ids {
		ids[i] = protocol.SiteID(i)
	}
	for i := range ids {
		env := scheme.Env{
			Self: cl.replicas[i],
			// Keep the WrapTransport decoration (fault injection,
			// accounting): rebuilding over the bare network would
			// silently strip it after Grow/Remove.
			Transport: cl.transport,
			Sites:     ids,
			Weights:   cl.cfg.Weights,
			Obs:       cl.cfg.Observer.SchemeSite(cl.cfg.Scheme.String(), ids[i]),
		}
		if env.Obs != nil {
			cl.replicas[i].SetWTransitionHook(env.Obs.WTransition)
		}
		ctrl, err := buildController(cl.cfg, env)
		if err != nil {
			return err
		}
		cl.ctrls[i] = ctrl
		cl.devices[i].setController(ctrl)
	}
	// Repairers hold the membership list too; rebuild them over it.
	return cl.buildRepairers(ids)
}
