package cache

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relidev/internal/block"
	"relidev/internal/core"
	"relidev/internal/scheme"
	"relidev/internal/store"
)

var testGeom = block.Geometry{BlockSize: 32, NumBlocks: 16}

func newLocal(t *testing.T) core.Device {
	t.Helper()
	st, err := store.NewMem(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewLocalDevice(st)
}

func pad(s string) []byte {
	out := make([]byte, testGeom.BlockSize)
	copy(out, s)
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4); err == nil {
		t.Fatal("accepted nil device")
	}
	if _, err := New(newLocal(t), 0); err == nil {
		t.Fatal("accepted zero capacity")
	}
}

func TestReadThroughAndHit(t *testing.T) {
	ctx := context.Background()
	inner := newLocal(t)
	d, err := New(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.WriteBlock(ctx, 1, pad("below")); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(ctx, 1)
	if err != nil || string(got[:5]) != "below" {
		t.Fatalf("read = %q, %v", got[:5], err)
	}
	if st := d.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := d.ReadBlock(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteThrough(t *testing.T) {
	ctx := context.Background()
	inner := newLocal(t)
	d, _ := New(inner, 4)
	if err := d.WriteBlock(ctx, 2, pad("through")); err != nil {
		t.Fatal(err)
	}
	// Visible below immediately.
	got, err := inner.ReadBlock(ctx, 2)
	if err != nil || string(got[:7]) != "through" {
		t.Fatalf("inner read = %q, %v", got[:7], err)
	}
	// And served from cache above.
	if _, err := d.ReadBlock(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	ctx := context.Background()
	d, _ := New(newLocal(t), 2)
	for i := 0; i < 3; i++ {
		if err := d.WriteBlock(ctx, block.Index(i), pad("x")); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if st := d.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// Block 0 was evicted (LRU); 1 and 2 still hit.
	d.ReadBlock(ctx, 1)
	d.ReadBlock(ctx, 2)
	d.ReadBlock(ctx, 0)
	if st := d.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Touching 1 makes 2 the LRU victim on the next insert... after the
	// miss on 0 above, order (front to back) is 0,2,1; touch 1:
	d.ReadBlock(ctx, 1) // hit
	// capacity 2, but we inserted 0 on the miss above, evicting... verify
	// via counters only: deterministic eviction order is covered by Len
	// and the hit/miss assertions.
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestReadReturnsCopy(t *testing.T) {
	ctx := context.Background()
	d, _ := New(newLocal(t), 2)
	if err := d.WriteBlock(ctx, 0, pad("orig")); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadBlock(ctx, 0)
	got[0] = 'X'
	again, _ := d.ReadBlock(ctx, 0)
	if string(again[:4]) != "orig" {
		t.Fatal("cache exposed internal buffer")
	}
}

func TestInvalidate(t *testing.T) {
	ctx := context.Background()
	inner := newLocal(t)
	d, _ := New(inner, 4)
	if err := d.WriteBlock(ctx, 0, pad("old")); err != nil {
		t.Fatal(err)
	}
	// Another mount writes underneath.
	if err := inner.WriteBlock(ctx, 0, pad("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadBlock(ctx, 0)
	if string(got[:3]) != "old" {
		t.Fatal("expected the stale cached block before Invalidate")
	}
	d.Invalidate()
	if d.Len() != 0 {
		t.Fatal("Invalidate left entries")
	}
	got, _ = d.ReadBlock(ctx, 0)
	if string(got[:3]) != "new" {
		t.Fatalf("after Invalidate read = %q", got[:3])
	}
}

func TestFailedWriteNotCached(t *testing.T) {
	// A write denied by the consistency scheme must not be served from
	// cache afterwards.
	ctx := context.Background()
	cl, err := core.NewCluster(core.ClusterConfig{
		Sites: 3, Geometry: testGeom, Scheme: core.Voting,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cl.Device(0)
	d, _ := New(dev, 4)
	if err := d.WriteBlock(ctx, 0, pad("good")); err != nil {
		t.Fatal(err)
	}
	cl.Fail(1)
	cl.Fail(2)
	if err := d.WriteBlock(ctx, 0, pad("bad")); !errors.Is(err, scheme.ErrNoQuorum) {
		t.Fatalf("write = %v, want ErrNoQuorum", err)
	}
	cl.Restart(ctx, 1)
	cl.Restart(ctx, 2)
	got, err := d.ReadBlock(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4], []byte("good")) {
		t.Fatalf("read = %q, want the last successful write", got[:4])
	}
}

// The Figure 1 effect: a buffer cache in front of a voting device
// removes the quorum traffic from repeated reads.
func TestCacheEliminatesVotingReadTraffic(t *testing.T) {
	ctx := context.Background()
	cl, err := core.NewCluster(core.ClusterConfig{
		Sites: 3, Geometry: testGeom, Scheme: core.Voting,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cl.Device(0)
	d, _ := New(dev, 8)
	if err := d.WriteBlock(ctx, 3, pad("hot")); err != nil {
		t.Fatal(err)
	}
	cl.Network().ResetStats()
	for i := 0; i < 50; i++ {
		if _, err := d.ReadBlock(ctx, 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Network().Stats().Transmissions; got != 0 {
		t.Fatalf("50 cached reads cost %d transmissions, want 0", got)
	}
	// Uncached, the same reads would have cost 50 quorum collections.
	cl.Network().ResetStats()
	for i := 0; i < 50; i++ {
		if _, err := dev.ReadBlock(ctx, 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Network().Stats().Transmissions; got != 150 { // U_V = 3 each
		t.Fatalf("uncached reads cost %d, want 150", got)
	}
}

func TestGeometryPassthrough(t *testing.T) {
	d, _ := New(newLocal(t), 2)
	if d.Geometry() != testGeom {
		t.Fatal("geometry mismatch")
	}
}

// gateDevice wraps a device so a test can hold a miss fill in flight:
// ReadBlock captures the data, signals entered, then waits for release
// before returning — modelling a slow quorum read that completes after
// a concurrent write.
type gateDevice struct {
	core.Device
	reads   atomic.Int32
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateDevice) ReadBlock(ctx context.Context, idx block.Index) ([]byte, error) {
	data, err := g.Device.ReadBlock(ctx, idx)
	g.reads.Add(1)
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return data, err
}

// TestRacingFillDoesNotClobberWrite pins the miss-fill/write race: a
// read misses, captures the old block, and completes only after a
// concurrent write has installed new data. The stale fill must not be
// inserted over the newer write.
func TestRacingFillDoesNotClobberWrite(t *testing.T) {
	ctx := context.Background()
	inner := newLocal(t)
	if err := inner.WriteBlock(ctx, 1, pad("old")); err != nil {
		t.Fatal(err)
	}
	gate := &gateDevice{Device: inner, entered: make(chan struct{}), release: make(chan struct{})}
	d, err := New(gate, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := d.ReadBlock(ctx, 1); err != nil {
			t.Errorf("racing read: %v", err)
		}
	}()
	<-gate.entered // the fill holds the old data
	if err := d.WriteBlock(ctx, 1, pad("new")); err != nil {
		t.Fatal(err)
	}
	close(gate.release) // the stale fill now completes
	<-done

	got, err := d.ReadBlock(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "new" {
		t.Fatalf("cache serves %q after write; stale fill clobbered it", got[:3])
	}
}

// TestConcurrentMissesShareOneFill checks that simultaneous misses on
// one block issue a single inner read (one quorum collection) and all
// receive its result.
func TestConcurrentMissesShareOneFill(t *testing.T) {
	ctx := context.Background()
	inner := newLocal(t)
	if err := inner.WriteBlock(ctx, 2, pad("shared")); err != nil {
		t.Fatal(err)
	}
	gate := &gateDevice{Device: inner, entered: make(chan struct{}), release: make(chan struct{})}
	d, err := New(gate, 4)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan []byte, 2)
	go func() {
		data, err := d.ReadBlock(ctx, 2)
		if err != nil {
			t.Errorf("first read: %v", err)
		}
		results <- data
	}()
	<-gate.entered // fill registered; a second miss must join it
	go func() {
		data, err := d.ReadBlock(ctx, 2)
		if err != nil {
			t.Errorf("second read: %v", err)
		}
		results <- data
	}()
	// Give the second reader a moment to park on the shared fill, then
	// let the single inner read finish.
	time.Sleep(10 * time.Millisecond)
	close(gate.release)
	for i := 0; i < 2; i++ {
		if data := <-results; string(data[:6]) != "shared" {
			t.Fatalf("reader %d got %q", i, data[:6])
		}
	}
	if n := gate.reads.Load(); n != 1 {
		t.Fatalf("inner reads = %d, want 1 (shared fill)", n)
	}
	if st := d.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}
