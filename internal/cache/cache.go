// Package cache provides a buffer cache over a block device.
//
// In the paper's UNIX model (§2, Figure 1) the file system "consults
// internal data structures to ascertain if it has the requested block in
// the buffer cache" and only on a miss asks the device driver — and
// hence the reliable device — for the block. This package is that layer:
// a write-through LRU cache wrapping any core.Device.
//
// On a voting reliable device the cache is what makes the scheme usable
// at all: a cache hit answers locally and skips the quorum collection
// entirely, exactly as a kernel buffer cache would. The usual caveat
// applies unchanged from ordinary disks: one buffer cache per mounted
// device — concurrent mounts with independent caches see stale blocks,
// with replication or without it.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"relidev/internal/block"
	"relidev/internal/core"
)

// Stats counts cache effectiveness.
type Stats struct {
	// Hits and Misses count read lookups.
	Hits, Misses uint64
	// Evictions counts entries dropped to make room.
	Evictions uint64
}

// cacheStripes is the number of per-block write locks; writes to blocks
// in different stripes overlap their (potentially slow, replicated)
// inner writes.
const cacheStripes = 64

// Device is a write-through LRU block cache implementing core.Device.
// Inner device I/O happens outside the cache lock, so concurrent
// operations on distinct blocks overlap; a per-block stripe serialises
// same-block writes so the cache can never hold an older write than the
// device, and in-flight miss fills are tracked so a slow fill completing
// after a concurrent write cannot clobber the fresher data.
type Device struct {
	inner    core.Device
	capacity int

	// wstripes serialise same-block writes across the inner write and
	// the cache update.
	wstripes [cacheStripes]sync.Mutex

	mu      sync.Mutex
	entries map[block.Index]*list.Element
	lru     *list.List // front = most recently used
	fills   map[block.Index]*fill
	stats   Stats
}

type entry struct {
	idx  block.Index
	data []byte
}

// fill tracks one in-flight miss fill so concurrent misses on the same
// block share a single inner read, and writes can mark it stale.
type fill struct {
	done  chan struct{}
	data  []byte
	err   error
	stale bool // a write or invalidation overtook this fill
}

var _ core.Device = (*Device)(nil)

// New wraps inner with a cache holding up to capacity blocks.
func New(inner core.Device, capacity int) (*Device, error) {
	if inner == nil {
		return nil, fmt.Errorf("cache: nil device")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	return &Device{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[block.Index]*list.Element, capacity),
		lru:      list.New(),
		fills:    make(map[block.Index]*fill),
	}, nil
}

// Geometry implements core.Device.
func (d *Device) Geometry() block.Geometry { return d.inner.Geometry() }

// ReadBlock implements core.Device: cache hits answer locally without
// touching the underlying device. Concurrent misses on the same block
// share one inner read; the fill is discarded when a write overtakes it,
// so a slow fill can never reinstall data older than the cache has seen.
func (d *Device) ReadBlock(ctx context.Context, idx block.Index) ([]byte, error) {
	d.mu.Lock()
	if el, ok := d.entries[idx]; ok {
		d.lru.MoveToFront(el)
		d.stats.Hits++
		out := make([]byte, len(el.Value.(*entry).data))
		copy(out, el.Value.(*entry).data)
		d.mu.Unlock()
		return out, nil
	}
	d.stats.Misses++
	if f, ok := d.fills[idx]; ok {
		// Another goroutine is already fetching this block; share its
		// result instead of issuing a duplicate quorum collection.
		d.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-f.done:
		}
		d.mu.Lock()
		stale, data, err := f.stale, f.data, f.err
		d.mu.Unlock()
		if err == nil && !stale {
			out := make([]byte, len(data))
			copy(out, data)
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		// The shared fill was overtaken by a write; fetch fresh data
		// without caching it (the write already installed the newest).
		return d.inner.ReadBlock(ctx, idx)
	}
	f := &fill{done: make(chan struct{})}
	d.fills[idx] = f
	d.mu.Unlock()

	data, err := d.inner.ReadBlock(ctx, idx)

	d.mu.Lock()
	delete(d.fills, idx)
	f.data, f.err = data, err
	if err == nil && !f.stale {
		d.insertLocked(idx, data)
	}
	d.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteBlock implements core.Device: write-through, so the replicated
// copies are always as current as the cache. A per-block stripe keeps
// same-block writes ordered end to end (inner write, then cache update)
// while distinct blocks overlap their inner writes.
func (d *Device) WriteBlock(ctx context.Context, idx block.Index, data []byte) error {
	s := &d.wstripes[uint64(idx)%cacheStripes]
	s.Lock()
	defer s.Unlock()

	err := d.inner.WriteBlock(ctx, idx, data)
	d.mu.Lock()
	if f, ok := d.fills[idx]; ok {
		// An in-flight miss fill read the block before this write; its
		// result must not be installed over the newer data.
		f.stale = true
	}
	if err != nil {
		// A failed replicated write must not linger in the cache as if it
		// had happened.
		if el, ok := d.entries[idx]; ok {
			d.lru.Remove(el)
			delete(d.entries, idx)
		}
	} else {
		d.insertLocked(idx, data)
	}
	d.mu.Unlock()
	return err
}

// insertLocked stores a copy of data for idx, evicting the LRU entry if
// full. Callers hold d.mu.
func (d *Device) insertLocked(idx block.Index, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	if el, ok := d.entries[idx]; ok {
		el.Value.(*entry).data = cp
		d.lru.MoveToFront(el)
		return
	}
	for len(d.entries) >= d.capacity {
		oldest := d.lru.Back()
		if oldest == nil {
			break
		}
		d.lru.Remove(oldest)
		delete(d.entries, oldest.Value.(*entry).idx)
		d.stats.Evictions++
	}
	d.entries[idx] = d.lru.PushFront(&entry{idx: idx, data: cp})
}

// Invalidate drops every cached block; subsequent reads go to the
// device. Call it after another mount may have written the device.
// In-flight miss fills are discarded too: their data predates the call.
func (d *Device) Invalidate() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries = make(map[block.Index]*list.Element, d.capacity)
	d.lru.Init()
	for _, f := range d.fills {
		f.stale = true
	}
}

// Len returns the number of cached blocks.
func (d *Device) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
