// Package cache provides a buffer cache over a block device.
//
// In the paper's UNIX model (§2, Figure 1) the file system "consults
// internal data structures to ascertain if it has the requested block in
// the buffer cache" and only on a miss asks the device driver — and
// hence the reliable device — for the block. This package is that layer:
// a write-through LRU cache wrapping any core.Device.
//
// On a voting reliable device the cache is what makes the scheme usable
// at all: a cache hit answers locally and skips the quorum collection
// entirely, exactly as a kernel buffer cache would. The usual caveat
// applies unchanged from ordinary disks: one buffer cache per mounted
// device — concurrent mounts with independent caches see stale blocks,
// with replication or without it.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"relidev/internal/block"
	"relidev/internal/core"
)

// Stats counts cache effectiveness.
type Stats struct {
	// Hits and Misses count read lookups.
	Hits, Misses uint64
	// Evictions counts entries dropped to make room.
	Evictions uint64
}

// Device is a write-through LRU block cache implementing core.Device.
type Device struct {
	inner    core.Device
	capacity int

	mu      sync.Mutex
	entries map[block.Index]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats
}

type entry struct {
	idx  block.Index
	data []byte
}

var _ core.Device = (*Device)(nil)

// New wraps inner with a cache holding up to capacity blocks.
func New(inner core.Device, capacity int) (*Device, error) {
	if inner == nil {
		return nil, fmt.Errorf("cache: nil device")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	return &Device{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[block.Index]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// Geometry implements core.Device.
func (d *Device) Geometry() block.Geometry { return d.inner.Geometry() }

// ReadBlock implements core.Device: cache hits answer locally without
// touching the underlying device.
func (d *Device) ReadBlock(ctx context.Context, idx block.Index) ([]byte, error) {
	d.mu.Lock()
	if el, ok := d.entries[idx]; ok {
		d.lru.MoveToFront(el)
		d.stats.Hits++
		out := make([]byte, len(el.Value.(*entry).data))
		copy(out, el.Value.(*entry).data)
		d.mu.Unlock()
		return out, nil
	}
	d.stats.Misses++
	d.mu.Unlock()

	data, err := d.inner.ReadBlock(ctx, idx)
	if err != nil {
		return nil, err
	}
	d.insert(idx, data)
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteBlock implements core.Device: write-through, so the replicated
// copies are always as current as the cache.
func (d *Device) WriteBlock(ctx context.Context, idx block.Index, data []byte) error {
	if err := d.inner.WriteBlock(ctx, idx, data); err != nil {
		// A failed replicated write must not linger in the cache as if it
		// had happened.
		d.invalidateOne(idx)
		return err
	}
	d.insert(idx, data)
	return nil
}

// insert stores a copy of data for idx, evicting the LRU entry if full.
func (d *Device) insert(idx block.Index, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.entries[idx]; ok {
		el.Value.(*entry).data = cp
		d.lru.MoveToFront(el)
		return
	}
	for len(d.entries) >= d.capacity {
		oldest := d.lru.Back()
		if oldest == nil {
			break
		}
		d.lru.Remove(oldest)
		delete(d.entries, oldest.Value.(*entry).idx)
		d.stats.Evictions++
	}
	d.entries[idx] = d.lru.PushFront(&entry{idx: idx, data: cp})
}

func (d *Device) invalidateOne(idx block.Index) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.entries[idx]; ok {
		d.lru.Remove(el)
		delete(d.entries, idx)
	}
}

// Invalidate drops every cached block; subsequent reads go to the
// device. Call it after another mount may have written the device.
func (d *Device) Invalidate() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries = make(map[block.Index]*list.Element, d.capacity)
	d.lru.Init()
}

// Len returns the number of cached blocks.
func (d *Device) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
