package faultnet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"relidev/internal/protocol"
	"relidev/internal/simnet"
)

// echoHandler answers StatusRequests and counts deliveries.
type echoHandler struct {
	id    protocol.SiteID
	calls atomic.Int64
}

func (h *echoHandler) Handle(ctx context.Context, from protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	h.calls.Add(1)
	return protocol.StatusReply{State: protocol.StateAvailable, VersionSum: uint64(h.id)}, nil
}

func buildSim(t *testing.T, n int) (*simnet.Network, []*echoHandler) {
	t.Helper()
	net := simnet.New(simnet.Multicast)
	hs := make([]*echoHandler, n)
	for i := 0; i < n; i++ {
		hs[i] = &echoHandler{id: protocol.SiteID(i)}
		net.Attach(protocol.SiteID(i), hs[i])
	}
	return net, hs
}

// runWorkload issues the same sequential call pattern and records, per
// call, whether it failed and with what error text.
func runWorkload(t *testing.T, tr protocol.Transport, sites, calls int) []string {
	t.Helper()
	ctx := context.Background()
	var trace []string
	for i := 0; i < calls; i++ {
		from := protocol.SiteID(i % sites)
		to := protocol.SiteID((i + 1) % sites)
		_, err := tr.Call(ctx, from, to, protocol.StatusRequest{})
		if err != nil {
			trace = append(trace, fmt.Sprintf("%d:%v", i, err))
		} else {
			trace = append(trace, fmt.Sprintf("%d:ok", i))
		}
	}
	return trace
}

func TestDeterministicReplaySameSeed(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.2, ReplyLossProb: 0.1, TimeoutProb: 0.1}
	run := func() ([]string, Stats) {
		net, _ := buildSim(t, 3)
		fn, err := New(net, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		trace := runWorkload(t, fn, 3, 400)
		return trace, fn.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs: %+v vs %+v", s1, s2)
	}
	if s1.Total() == 0 {
		t.Fatal("no faults injected at 40% aggregate probability over 400 calls")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("call %d diverged: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) []string {
		net, _ := buildSim(t, 3)
		fn, err := New(net, Config{Seed: seed, DropProb: 0.3})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return runWorkload(t, fn, 3, 200)
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

func TestInjectedErrorsAreTransient(t *testing.T) {
	net, _ := buildSim(t, 2)
	fn, err := New(net, Config{Seed: 7, DropProb: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = fn.Call(context.Background(), 0, 1, protocol.StatusRequest{})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !errors.Is(err, protocol.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
}

func TestReplyLossDeliversButHidesOutcome(t *testing.T) {
	net, hs := buildSim(t, 2)
	fn, err := New(net, Config{Seed: 7, ReplyLossProb: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = fn.Call(context.Background(), 0, 1, protocol.StatusRequest{})
	if !errors.Is(err, protocol.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if got := hs[1].calls.Load(); got != 1 {
		t.Fatalf("destination handled %d calls, want 1 (request delivered, reply lost)", got)
	}
}

func TestCrashWindowBlocksBothDirections(t *testing.T) {
	net, _ := buildSim(t, 3)
	fn, err := New(net, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fn.CrashSite(1)
	ctx := context.Background()
	if _, err := fn.Call(ctx, 0, 1, protocol.StatusRequest{}); !errors.Is(err, protocol.ErrSiteDown) {
		t.Fatalf("call into crash window: %v, want ErrSiteDown", err)
	}
	if _, err := fn.Call(ctx, 1, 2, protocol.StatusRequest{}); !errors.Is(err, protocol.ErrSiteDown) {
		t.Fatalf("call out of crash window: %v, want ErrSiteDown", err)
	}
	fn.RestartSite(1)
	if _, err := fn.Call(ctx, 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestPartitionSeparatesGroupsUntilHeal(t *testing.T) {
	net, _ := buildSim(t, 3)
	fn, err := New(net, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fn.SetPartition(2, 1)
	ctx := context.Background()
	if _, err := fn.Call(ctx, 0, 2, protocol.StatusRequest{}); !errors.Is(err, protocol.ErrSiteUnreachable) {
		t.Fatalf("cross-partition call: %v, want ErrSiteUnreachable", err)
	}
	if _, err := fn.Call(ctx, 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatalf("same-partition call: %v", err)
	}
	fn.Heal()
	if _, err := fn.Call(ctx, 0, 2, protocol.StatusRequest{}); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestLatencyInjectionDelaysButDelivers(t *testing.T) {
	net, hs := buildSim(t, 2)
	fn, err := New(net, Config{Seed: 3, LatencyProb: 1, MaxLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := fn.Call(context.Background(), 0, 1, protocol.StatusRequest{}); err != nil {
			t.Fatalf("delayed call %d: %v", i, err)
		}
	}
	if got := hs[1].calls.Load(); got != 10 {
		t.Fatalf("delivered %d calls, want 10", got)
	}
	if s := fn.Stats(); s.Delays != 10 {
		t.Fatalf("Delays = %d, want 10", s.Delays)
	}
}

func TestConfigValidation(t *testing.T) {
	net, _ := buildSim(t, 2)
	if _, err := New(net, Config{DropProb: 0.7, TimeoutProb: 0.5}); err == nil {
		t.Fatal("accepted probabilities summing past 1")
	}
	if _, err := New(net, Config{DropProb: -0.1}); err == nil {
		t.Fatal("accepted negative probability")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("accepted nil inner transport")
	}
}

// plainTransport is a minimal non-simnet transport, standing in for
// rpcnet so wrap-mode (per-destination decoration) is exercised without
// TCP.
type plainTransport struct {
	handlers map[protocol.SiteID]protocol.Handler
}

func (p *plainTransport) Call(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	h, ok := p.handlers[to]
	if !ok {
		return nil, protocol.ErrSiteDown
	}
	return h.Handle(ctx, from, req)
}

func (p *plainTransport) Fetch(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	return p.Call(ctx, from, to, req)
}

func (p *plainTransport) Broadcast(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	out := make(map[protocol.SiteID]protocol.Result, len(dests))
	for _, to := range dests {
		resp, err := p.Call(ctx, from, to, req)
		out[to] = protocol.Result{Resp: resp, Err: err}
	}
	return out
}

func (p *plainTransport) Notify(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	return p.Broadcast(ctx, from, dests, req)
}

func TestWrapModeDecoratesPerDestination(t *testing.T) {
	hs := []*echoHandler{{id: 0}, {id: 1}, {id: 2}}
	inner := &plainTransport{handlers: map[protocol.SiteID]protocol.Handler{
		0: hs[0], 1: hs[1], 2: hs[2],
	}}
	fn, err := New(inner, Config{Seed: 9})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fn.CrashSite(2)
	res := fn.Broadcast(context.Background(), 0, []protocol.SiteID{1, 2}, protocol.StatusRequest{})
	if res[1].Err != nil {
		t.Fatalf("healthy destination errored: %v", res[1].Err)
	}
	if !errors.Is(res[2].Err, protocol.ErrSiteDown) {
		t.Fatalf("crashed destination: %v, want ErrSiteDown", res[2].Err)
	}
	if got := hs[2].calls.Load(); got != 0 {
		t.Fatalf("crashed destination handled %d calls, want 0", got)
	}
}

func TestWrapModeDropNeverReachesInner(t *testing.T) {
	hs := []*echoHandler{{id: 0}, {id: 1}}
	inner := &plainTransport{handlers: map[protocol.SiteID]protocol.Handler{0: hs[0], 1: hs[1]}}
	fn, err := New(inner, Config{Seed: 9, DropProb: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := fn.Call(context.Background(), 0, 1, protocol.StatusRequest{}); !errors.Is(err, protocol.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if got := hs[1].calls.Load(); got != 0 {
		t.Fatalf("inner handled %d calls after injected drop, want 0", got)
	}
}
