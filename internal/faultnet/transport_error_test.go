package faultnet

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"relidev/internal/protocol"
	"relidev/internal/scheme"
	"relidev/internal/simnet"
)

// failingHandler answers every request with a plain application error.
type failingHandler struct{}

var errApplication = errors.New("handler rejected the request")

func (failingHandler) Handle(context.Context, protocol.SiteID, protocol.Request) (protocol.Response, error) {
	return nil, fmt.Errorf("deliberate: %w", errApplication)
}

// TestIsTransportErrorClassification verifies that every injected fault
// class reads as a transport failure under scheme.IsTransportError — so
// chaos schedules exercise exactly the §3 missing-answer path — while a
// delivered application error passes through unclassified.
func TestIsTransportErrorClassification(t *testing.T) {
	ctx := context.Background()

	t.Run("dropped request", func(t *testing.T) {
		net, _ := buildSim(t, 2)
		fn, err := New(net, Config{Seed: 7, DropProb: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = fn.Call(ctx, 0, 1, protocol.StatusRequest{})
		if !errors.Is(err, ErrInjected) || !errors.Is(err, protocol.ErrTransient) {
			t.Fatalf("err = %v, want ErrInjected and ErrTransient", err)
		}
		if !scheme.IsTransportError(err) {
			t.Fatalf("dropped request not a transport error: %v", err)
		}
	})

	t.Run("lost reply", func(t *testing.T) {
		net, hs := buildSim(t, 2)
		fn, err := New(net, Config{Seed: 7, ReplyLossProb: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = fn.Call(ctx, 0, 1, protocol.StatusRequest{})
		if !scheme.IsTransportError(err) {
			t.Fatalf("lost reply not a transport error: %v", err)
		}
		if hs[1].calls.Load() != 1 {
			t.Fatal("reply loss must still deliver the request")
		}
	})

	t.Run("call timeout", func(t *testing.T) {
		net, _ := buildSim(t, 2)
		fn, err := New(net, Config{Seed: 7, TimeoutProb: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = fn.Call(ctx, 0, 1, protocol.StatusRequest{})
		if !errors.Is(err, ErrInjected) || !scheme.IsTransportError(err) {
			t.Fatalf("timeout not an injected transport error: %v", err)
		}
	})

	t.Run("crash window", func(t *testing.T) {
		net, _ := buildSim(t, 2)
		fn, err := New(net, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fn.CrashSite(1)
		_, err = fn.Call(ctx, 0, 1, protocol.StatusRequest{})
		if !errors.Is(err, protocol.ErrSiteDown) || !scheme.IsTransportError(err) {
			t.Fatalf("crash window err = %v, want ErrSiteDown transport error", err)
		}
	})

	t.Run("partition", func(t *testing.T) {
		net, _ := buildSim(t, 3)
		fn, err := New(net, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fn.SetPartition(2, 1)
		_, err = fn.Call(ctx, 0, 2, protocol.StatusRequest{})
		if !errors.Is(err, protocol.ErrSiteUnreachable) || !scheme.IsTransportError(err) {
			t.Fatalf("partition err = %v, want ErrSiteUnreachable transport error", err)
		}
	})

	t.Run("delivered application error passes through", func(t *testing.T) {
		net := simnet.New(simnet.Multicast)
		net.Attach(0, &echoHandler{id: 0})
		net.Attach(1, failingHandler{})
		fn, err := New(net, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = fn.Call(ctx, 0, 1, protocol.StatusRequest{})
		if !errors.Is(err, errApplication) {
			t.Fatalf("err = %v, want the handler's own error", err)
		}
		if errors.Is(err, ErrInjected) {
			t.Fatalf("application error tagged as injected: %v", err)
		}
		if scheme.IsTransportError(err) {
			t.Fatalf("delivered application error classified as transport failure: %v", err)
		}
	})
}
