// Package faultnet is a fault-injecting protocol.Transport decorator.
//
// It wraps either transport of the reliable device — the in-process
// simulated network or the TCP client — and injects, from a seeded
// deterministic decision stream, the failures the paper's reliable
// network rules out but a real deployment must survive: lost requests,
// lost replies, call timeouts, added per-link latency, crash windows,
// and partitions. The same seed replays the same faults bit-identically
// against the same workload, so a chaos scenario that finds a
// consistency violation is a reproducible test case, not an anecdote.
//
// Determinism. Every ordered link (from, to) owns an independent
// decision stream: the i-th remote call on a link draws its fate from
// splitmix64(seed, from, to, i). Concurrent calls on *different* links
// never perturb each other's streams, so a workload that issues a
// deterministic sequence of operations per link sees identical faults
// on every run, regardless of goroutine scheduling inside broadcast
// fan-outs.
//
// Over the simulated network the decorator installs a simnet.FaultRule
// and forwards all traffic untouched: decisions then happen inside the
// fan-out, per destination, and the §5 transmission accounting of the
// enclosing broadcast stays exact. Over any other transport (rpcnet)
// broadcasts are decomposed into per-destination calls, which matches
// what a TCP "broadcast" is anyway.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"relidev/internal/obs"
	"relidev/internal/protocol"
	"relidev/internal/simnet"
)

// ErrInjected marks every error produced by the decorator, so tests and
// the chaos engine can tell injected faults from organic ones.
var ErrInjected = errors.New("faultnet: injected fault")

func init() {
	// Teach the metering transport to bucket injected faults. The
	// classifier must run before the protocol sentinel checks (which
	// obs guarantees for registered classifiers) because an injected
	// fault *wraps* a protocol sentinel, and the injection is the more
	// specific fact.
	obs.RegisterErrorClassifier(func(err error) (string, bool) {
		if errors.Is(err, ErrInjected) {
			return obs.ClassInjected, true
		}
		return "", false
	})
}

// Config parameterises the probabilistic fault classes. Probabilities
// are per remote call and are cut from the same unit draw, so their sum
// must stay <= 1.
type Config struct {
	// Seed selects the deterministic decision stream.
	Seed int64
	// DropProb loses the request: the destination never sees it.
	DropProb float64
	// ReplyLossProb delivers the request but loses the reply: the
	// destination acted, the caller cannot tell.
	ReplyLossProb float64
	// TimeoutProb fails the call as a timeout before delivery.
	TimeoutProb float64
	// LatencyProb delays the delivery by a deterministic duration drawn
	// from (0, MaxLatency].
	LatencyProb float64
	// MaxLatency bounds injected delays; zero with LatencyProb > 0
	// defaults to 200µs.
	MaxLatency time.Duration
	// NoDropKinds lists request kinds whose *delivery* is guaranteed:
	// the drop and timeout classes skip them, while reply loss and
	// latency still apply. The voting chaos menu exempts "put" —
	// Gifford-style voting assumes an accepted update reaches its whole
	// quorum, and a silently dropped put leaves a sub-quorum install
	// that can alias version numbers with a later write. Losing the
	// *acknowledgement* is fair game: the coordinator then reports the
	// write indeterminate, which the scheme is built to survive.
	NoDropKinds []string
}

func (c Config) validate() error {
	for _, p := range []float64{c.DropProb, c.ReplyLossProb, c.TimeoutProb, c.LatencyProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faultnet: probability %v out of [0,1]", p)
		}
	}
	if s := c.DropProb + c.ReplyLossProb + c.TimeoutProb + c.LatencyProb; s > 1 {
		return fmt.Errorf("faultnet: fault probabilities sum to %v > 1", s)
	}
	return nil
}

// Stats counts injected faults by class.
type Stats struct {
	Drops       uint64
	ReplyLosses uint64
	Timeouts    uint64
	Delays      uint64
	CrashBlocks uint64
	Partitions  uint64
}

// Total returns the number of injected fault events (delays included).
func (s Stats) Total() uint64 {
	return s.Drops + s.ReplyLosses + s.Timeouts + s.Delays + s.CrashBlocks + s.Partitions
}

// ruleHost is implemented by transports (simnet) that accept an
// in-fan-out fault rule.
type ruleHost interface {
	SetFaultRule(simnet.FaultRule)
}

type linkKey struct {
	from, to protocol.SiteID
}

// Network is the decorating transport.
type Network struct {
	inner    protocol.Transport
	cfg      Config
	ruleMode bool

	mu       sync.Mutex
	seq      map[linkKey]uint64
	crashed  protocol.SiteSet
	groups   map[protocol.SiteID]int
	noDrops  map[string]bool
	disabled atomic.Bool

	drops       atomic.Uint64
	replyLosses atomic.Uint64
	timeouts    atomic.Uint64
	delays      atomic.Uint64
	crashBlocks atomic.Uint64
	partitions  atomic.Uint64
}

var _ protocol.Transport = (*Network)(nil)

// New wraps inner with fault injection. When inner accepts a fault rule
// (simnet), injection moves inside its delivery fan-out.
func New(inner protocol.Transport, cfg Config) (*Network, error) {
	if inner == nil {
		return nil, errors.New("faultnet: nil inner transport")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxLatency == 0 {
		cfg.MaxLatency = 200 * time.Microsecond
	}
	n := &Network{
		inner:   inner,
		cfg:     cfg,
		seq:     make(map[linkKey]uint64),
		groups:  make(map[protocol.SiteID]int),
		noDrops: make(map[string]bool, len(cfg.NoDropKinds)),
	}
	for _, k := range cfg.NoDropKinds {
		n.noDrops[k] = true
	}
	if host, ok := inner.(ruleHost); ok {
		n.ruleMode = true
		host.SetFaultRule(n.rule)
	}
	return n, nil
}

// SetInjection enables or disables the probabilistic fault classes.
// Explicit crash and partition windows keep working either way. The
// chaos harness turns injection off for its final convergence phase:
// "the network eventually behaves" is exactly the paper's §6 condition
// for recovery to complete.
func (n *Network) SetInjection(enabled bool) {
	n.disabled.Store(!enabled)
}

// Detach removes the fault rule from a rule-hosting inner transport.
func (n *Network) Detach() {
	if host, ok := n.inner.(ruleHost); ok && n.ruleMode {
		host.SetFaultRule(nil)
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		Drops:       n.drops.Load(),
		ReplyLosses: n.replyLosses.Load(),
		Timeouts:    n.timeouts.Load(),
		Delays:      n.delays.Load(),
		CrashBlocks: n.crashBlocks.Load(),
		Partitions:  n.partitions.Load(),
	}
}

// CrashSite opens a crash window: every call to or from the site fails
// with ErrSiteDown until RestartSite. Over rpcnet this is the only way
// to make a remote site "fail-stop" without killing its process.
func (n *Network) CrashSite(id protocol.SiteID) {
	n.mu.Lock()
	n.crashed = n.crashed.Add(id)
	n.mu.Unlock()
}

// RestartSite closes a crash window.
func (n *Network) RestartSite(id protocol.SiteID) {
	n.mu.Lock()
	n.crashed = n.crashed.Remove(id)
	n.mu.Unlock()
}

// SetPartition places a site in a partition group; sites in different
// groups cannot exchange messages. Group 0 is the default.
func (n *Network) SetPartition(id protocol.SiteID, group int) {
	n.mu.Lock()
	if group == 0 {
		delete(n.groups, id)
	} else {
		n.groups[id] = group
	}
	n.mu.Unlock()
}

// Heal returns every site to partition group 0.
func (n *Network) Heal() {
	n.mu.Lock()
	n.groups = make(map[protocol.SiteID]int)
	n.mu.Unlock()
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality mix whose output stream for counter inputs passes
// statistical tests. Deterministic by construction.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// draw advances the link's decision stream and returns two independent
// uniform variates: the class selector and the latency fraction.
func (n *Network) draw(from, to protocol.SiteID) (float64, float64) {
	k := linkKey{from, to}
	n.mu.Lock()
	i := n.seq[k]
	n.seq[k] = i + 1
	n.mu.Unlock()
	base := uint64(n.cfg.Seed) ^ uint64(from)<<40 ^ uint64(to)<<20 ^ i<<1
	return unit(splitmix64(base)), unit(splitmix64(base + 1))
}

// decide classifies one remote call. It checks the explicit windows
// (crash, partition) first, then the probabilistic classes, and sleeps
// itself for injected latency. Kinds with guaranteed delivery have the
// drop and timeout classes remapped to plain delivery; the stream draw
// still advances, so exempting a kind does not shift other links' fates.
func (n *Network) decide(from, to protocol.SiteID, kind string) (simnet.FaultDecision, error) {
	n.mu.Lock()
	crashed := n.crashed.Has(from) || n.crashed.Has(to)
	partitioned := n.groups[from] != n.groups[to]
	n.mu.Unlock()
	if crashed {
		n.crashBlocks.Add(1)
		return simnet.DropRequest, fmt.Errorf("%w: crash window %v->%v: %w", ErrInjected, from, to, protocol.ErrSiteDown)
	}
	if partitioned {
		n.partitions.Add(1)
		return simnet.DropRequest, fmt.Errorf("%w: partition %v->%v: %w", ErrInjected, from, to, protocol.ErrSiteUnreachable)
	}
	if n.disabled.Load() {
		return simnet.Deliver, nil
	}
	u, v := n.draw(from, to)
	guaranteed := n.noDrops[kind]
	switch {
	case u < n.cfg.DropProb:
		if guaranteed {
			return simnet.Deliver, nil
		}
		n.drops.Add(1)
		return simnet.DropRequest, fmt.Errorf("%w: dropped request %v->%v: %w", ErrInjected, from, to, protocol.ErrTransient)
	case u < n.cfg.DropProb+n.cfg.ReplyLossProb:
		n.replyLosses.Add(1)
		return simnet.DropReply, fmt.Errorf("%w: lost reply %v->%v: %w", ErrInjected, from, to, protocol.ErrTransient)
	case u < n.cfg.DropProb+n.cfg.ReplyLossProb+n.cfg.TimeoutProb:
		if guaranteed {
			return simnet.Deliver, nil
		}
		n.timeouts.Add(1)
		return simnet.DropRequest, fmt.Errorf("%w: call timeout %v->%v: %w", ErrInjected, from, to, protocol.ErrTransient)
	case u < n.cfg.DropProb+n.cfg.ReplyLossProb+n.cfg.TimeoutProb+n.cfg.LatencyProb:
		n.delays.Add(1)
		d := time.Duration(v * float64(n.cfg.MaxLatency))
		if d > 0 {
			//relidev:allow nondeterminism: the *duration* is drawn from the seeded per-link stream; the sleep only paces real goroutines and never feeds the replay digest
			time.Sleep(d)
		}
		return simnet.Deliver, nil
	default:
		return simnet.Deliver, nil
	}
}

// rule adapts decide to the simnet fault-rule signature.
func (n *Network) rule(from, to protocol.SiteID, req protocol.Request) (simnet.FaultDecision, error) {
	return n.decide(from, to, req.Kind())
}

// Call implements protocol.Transport.
func (n *Network) Call(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	if n.ruleMode || from == to {
		return n.inner.Call(ctx, from, to, req)
	}
	dec, ferr := n.decide(from, to, req.Kind())
	if dec == simnet.DropRequest {
		return nil, ferr
	}
	resp, err := n.inner.Call(ctx, from, to, req)
	if dec == simnet.DropReply {
		return nil, ferr
	}
	return resp, err
}

// Fetch implements protocol.Transport.
func (n *Network) Fetch(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	if n.ruleMode || from == to {
		return n.inner.Fetch(ctx, from, to, req)
	}
	dec, ferr := n.decide(from, to, req.Kind())
	if dec == simnet.DropRequest {
		return nil, ferr
	}
	resp, err := n.inner.Fetch(ctx, from, to, req)
	if dec == simnet.DropReply {
		return nil, ferr
	}
	return resp, err
}

// Broadcast implements protocol.Transport. In rule mode the inner
// transport consults the decorator per destination; in wrap mode the
// broadcast decomposes into per-destination calls so each destination
// gets its own fault decision.
func (n *Network) Broadcast(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	if n.ruleMode {
		return n.inner.Broadcast(ctx, from, dests, req)
	}
	return n.fanOut(ctx, from, dests, req)
}

// Notify implements protocol.Transport.
func (n *Network) Notify(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	if n.ruleMode {
		return n.inner.Notify(ctx, from, dests, req)
	}
	return n.fanOut(ctx, from, dests, req)
}

func (n *Network) fanOut(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	out := make(map[protocol.SiteID]protocol.Result, len(dests))
	var (
		wg sync.WaitGroup
		rm sync.Mutex
	)
	for _, to := range dests {
		if to == from {
			continue
		}
		wg.Add(1)
		go func(to protocol.SiteID) {
			defer wg.Done()
			resp, err := n.Call(ctx, from, to, req)
			rm.Lock()
			out[to] = protocol.Result{Resp: resp, Err: err}
			rm.Unlock()
		}(to)
	}
	wg.Wait()
	return out
}
