package scheme

import (
	"context"
	"testing"

	"relidev/internal/block"
	"relidev/internal/protocol"
	"relidev/internal/site"
	"relidev/internal/store"
)

func testReplica(t *testing.T, id protocol.SiteID) *site.Replica {
	t.Helper()
	st, err := store.NewMem(block.Geometry{BlockSize: 16, NumBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := site.New(site.Config{ID: id, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// fakeTransport satisfies protocol.Transport for validation tests; no
// method is ever invoked.
type fakeTransport struct{}

var _ protocol.Transport = fakeTransport{}

func (fakeTransport) Call(_ context.Context, _, _ protocol.SiteID, _ protocol.Request) (protocol.Response, error) {
	return nil, protocol.ErrSiteDown
}

func (fakeTransport) Fetch(_ context.Context, _, _ protocol.SiteID, _ protocol.Request) (protocol.Response, error) {
	return nil, protocol.ErrSiteDown
}

func (fakeTransport) Broadcast(_ context.Context, _ protocol.SiteID, _ []protocol.SiteID, _ protocol.Request) map[protocol.SiteID]protocol.Result {
	return nil
}

func (fakeTransport) Notify(_ context.Context, _ protocol.SiteID, _ []protocol.SiteID, _ protocol.Request) map[protocol.SiteID]protocol.Result {
	return nil
}

func TestEnvValidate(t *testing.T) {
	rep := testReplica(t, 1)
	valid := Env{Self: rep, Transport: fakeTransport{}, Sites: []protocol.SiteID{0, 1, 2}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid env rejected: %v", err)
	}
	cases := []struct {
		name string
		env  Env
	}{
		{"nil self", Env{Transport: fakeTransport{}, Sites: []protocol.SiteID{1}}},
		{"nil transport", Env{Self: rep, Sites: []protocol.SiteID{1}}},
		{"no sites", Env{Self: rep, Transport: fakeTransport{}}},
		{"self missing", Env{Self: rep, Transport: fakeTransport{}, Sites: []protocol.SiteID{0, 2}}},
		{"weights mismatch", Env{Self: rep, Transport: fakeTransport{}, Sites: []protocol.SiteID{1}, Weights: []int64{1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.env.Validate(); err == nil {
				t.Fatal("invalid env accepted")
			}
		})
	}
}

func TestEnvHelpers(t *testing.T) {
	rep := testReplica(t, 1)
	env := Env{
		Self:      rep,
		Transport: fakeTransport{},
		Sites:     []protocol.SiteID{0, 1, 2},
		Weights:   []int64{1000, 1001, 1000},
	}
	rem := env.Remotes()
	if len(rem) != 2 || rem[0] != 0 || rem[1] != 2 {
		t.Fatalf("Remotes = %v", rem)
	}
	if got := env.TotalWeight(); got != 3001 {
		t.Fatalf("TotalWeight = %d", got)
	}
	if got := env.FullSet(); got != protocol.NewSiteSet(0, 1, 2) {
		t.Fatalf("FullSet = %v", got)
	}
}
