package scheme

import (
	"sync"

	"relidev/internal/block"
)

// opStripes is the number of lock stripes in an OpLocks. Operations on
// blocks that hash to different stripes proceed concurrently; 64 stripes
// keep the collision probability low for realistic client counts while
// costing a few KB per controller.
const opStripes = 64

// OpLocks is the concurrency regime shared by the three consistency
// controllers: data operations (read/write of one block) take a stripe
// keyed by the block index, so operations on distinct blocks run
// concurrently while two local operations on the *same* block still
// serialise — preserving the paper's per-block semantics exactly as the
// old controller-wide mutex did. Recovery takes the whole structure
// exclusively: it mutates site-wide state (version vectors, was-available
// sets) and must not interleave with in-flight operations.
//
// Cross-site concurrency control is explicitly out of scope for the
// paper (§5: no commit protocols); concurrent writes to one block from
// different sites remain last-writer-wins, unchanged by this type.
type OpLocks struct {
	// state is held shared by block operations and exclusively by
	// recovery, so recovery drains and excludes all in-flight operations.
	state sync.RWMutex
	// stripes serialise same-block (and same-stripe) operations.
	stripes [opStripes]sync.Mutex
}

// LockOp acquires the operation lock for one block.
func (l *OpLocks) LockOp(idx block.Index) {
	l.state.RLock()
	l.stripes[uint64(idx)%opStripes].Lock()
}

// UnlockOp releases what LockOp acquired.
func (l *OpLocks) UnlockOp(idx block.Index) {
	l.stripes[uint64(idx)%opStripes].Unlock()
	l.state.RUnlock()
}

// LockRecovery acquires the structure exclusively, waiting out every
// in-flight block operation and blocking new ones.
func (l *OpLocks) LockRecovery() { l.state.Lock() }

// UnlockRecovery releases LockRecovery.
func (l *OpLocks) UnlockRecovery() { l.state.Unlock() }
