// Package scheme defines the common shape of the three consistency
// control algorithms of §3. A Controller runs at one site and implements
// the data access operations (read and write of one block) plus the
// recovery procedure executed when the site restarts after a failure.
//
// The reliable device core drives Controllers; the file system above it
// never sees them.
package scheme

import (
	"context"
	"errors"

	"relidev/internal/block"
	"relidev/internal/obs"
	"relidev/internal/protocol"
	"relidev/internal/site"
)

// Errors shared by the schemes.
var (
	// ErrNoQuorum is returned by the voting scheme when too few sites are
	// reachable to form the required quorum (§3.1: "the file is
	// considered unavailable").
	ErrNoQuorum = errors.New("scheme: quorum not reachable")

	// ErrNotAvailable is returned by the available copy schemes when the
	// local site is failed or comatose: it must complete recovery before
	// serving data.
	ErrNotAvailable = errors.New("scheme: local site is not available")

	// ErrAwaitingSites is returned by Recover when the recovery protocol
	// cannot complete yet: no site is available and the sites this one
	// must wait for (C*(W_s), or all sites in the naive scheme) have not
	// all recovered — or the chosen repair source vanished mid-exchange.
	// The site stays comatose; recovery is retried when cluster
	// membership changes.
	ErrAwaitingSites = errors.New("scheme: recovery must wait for more sites")
)

// IsTransportError reports whether err is a communication-level failure
// — the peer is down, unreachable, or suffered a transient wire error —
// as opposed to a handler or storage error. Schemes treat transport
// failures as missing answers (the §3 fail-stop model); everything else
// is surfaced.
func IsTransportError(err error) bool {
	return errors.Is(err, protocol.ErrSiteDown) ||
		errors.Is(err, protocol.ErrSiteUnreachable) ||
		errors.Is(err, protocol.ErrTransient)
}

// Controller is one site's consistency control and data access engine.
type Controller interface {
	// Name identifies the scheme ("voting", "available-copy", "naive").
	Name() string

	// Read returns the current contents of one block, or an error when
	// the scheme deems the block unavailable from this site.
	Read(ctx context.Context, idx block.Index) ([]byte, error)

	// Write replaces the contents of one block.
	Write(ctx context.Context, idx block.Index, data []byte) error

	// Recover runs the scheme's recovery procedure after the local site
	// restarts (state comatose). On success the site is available. When
	// recovery must wait for other sites it returns ErrAwaitingSites and
	// leaves the site comatose.
	Recover(ctx context.Context) error
}

// Env is everything a Controller needs about its surroundings.
type Env struct {
	// Self is the local replica.
	Self *site.Replica
	// Transport connects the sites.
	Transport protocol.Transport
	// Sites lists every site holding a copy, including Self, in id order.
	Sites []protocol.SiteID
	// Weights holds the voting weight (thousandths) of each entry of
	// Sites. Only the voting scheme reads it.
	Weights []int64
	// Obs is this controller's instrumentation handle. It may be nil —
	// every obs method is a nil-receiver no-op, so controllers call it
	// unconditionally and an unmetered cluster pays nothing.
	Obs *obs.SchemeObs
}

// Remotes returns every site except Self.
func (e Env) Remotes() []protocol.SiteID {
	out := make([]protocol.SiteID, 0, len(e.Sites)-1)
	for _, id := range e.Sites {
		if id != e.Self.ID() {
			out = append(out, id)
		}
	}
	return out
}

// TotalWeight returns the sum of all site weights.
func (e Env) TotalWeight() int64 {
	var total int64
	for _, w := range e.Weights {
		total += w
	}
	return total
}

// FullSet returns the set of all sites.
func (e Env) FullSet() protocol.SiteSet {
	return protocol.NewSiteSet(e.Sites...)
}

// Validate reports configuration errors.
func (e Env) Validate() error {
	if e.Self == nil {
		return errors.New("scheme: env requires a local replica")
	}
	if e.Transport == nil {
		return errors.New("scheme: env requires a transport")
	}
	if len(e.Sites) == 0 {
		return errors.New("scheme: env requires at least one site")
	}
	found := false
	for _, id := range e.Sites {
		if id == e.Self.ID() {
			found = true
			break
		}
	}
	if !found {
		return errors.New("scheme: env site list does not include the local site")
	}
	if e.Weights != nil && len(e.Weights) != len(e.Sites) {
		return errors.New("scheme: weights and sites disagree in length")
	}
	return nil
}
