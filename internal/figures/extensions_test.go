package figures

import (
	"strings"
	"testing"
)

func TestFigureWitnessShape(t *testing.T) {
	fig, err := FigureWitness()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	full3, w21, w12, full2 := fig.Series[0], fig.Series[1], fig.Series[2], fig.Series[3]
	for i := range full3.X {
		// 2 copies + 1 witness tracks 3 full copies exactly.
		if diff := full3.Y[i] - w21.Y[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rho=%v: 2+1w diverges from 3 copies by %v", full3.X[i], diff)
		}
		// 1 copy + 2 witnesses needs the lone data site up AND a witness
		// quorum: exactly p²(1+q) — slightly below even 2 full copies,
		// showing witnesses are no substitute for data copies.
		rho := full3.X[i]
		p := 1 / (1 + rho)
		q := 1 - p
		if want := p * p * (1 + q); w12.Y[i]-want > 1e-12 || want-w12.Y[i] > 1e-12 {
			t.Fatalf("rho=%v: 1+2w = %v, want p^2(1+q) = %v", rho, w12.Y[i], want)
		}
		if rho > 0 && w12.Y[i] >= full2.Y[i] {
			t.Fatalf("rho=%v: 1+2w (%v) not below 2 full copies (%v)", rho, w12.Y[i], full2.Y[i])
		}
	}
	if !strings.Contains(fig.Series[1].Label, "witness") {
		t.Fatalf("label = %q", fig.Series[1].Label)
	}
}

func TestFigureEqualAvailabilityShape(t *testing.T) {
	fig, err := FigureEqualAvailability()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	v, ac, na := fig.Series[0], fig.Series[1], fig.Series[2]
	if len(v.X) != 4 {
		t.Fatalf("targets = %d, want 4", len(v.X))
	}
	for i := range v.X {
		if !(na.Y[i] <= ac.Y[i] && ac.Y[i] < v.Y[i]) {
			t.Fatalf("target idx %d: ordering broken: na=%v ac=%v v=%v", i, na.Y[i], ac.Y[i], v.Y[i])
		}
		// Voting's cost is steep: strictly increasing in the target.
		if i > 0 && v.Y[i] <= v.Y[i-1] {
			t.Fatalf("voting cost not increasing at target idx %d", i)
		}
	}
	// §5: "much steeper" — at the highest target voting is an order of
	// magnitude above naive.
	last := len(v.X) - 1
	if v.Y[last]/na.Y[last] < 10 {
		t.Fatalf("voting/naive at 5 nines = %v, want >= 10", v.Y[last]/na.Y[last])
	}
}
