package figures

import (
	"fmt"
	"math"

	"relidev/internal/analysis"
)

// FigureEqualAvailability renders the comparison §5 closes with: when
// each scheme is given the *fewest* copies that reach a target
// availability (instead of the same copy count), voting's traffic cost
// becomes much steeper. Multicast network, ρ = 0.05, read:write 2.5:1.
func FigureEqualAvailability() (Figure, error) {
	const (
		rho = 0.05
		x   = 2.5
	)
	targets := []float64{0.99, 0.999, 0.9999, 0.99999}
	series := map[analysis.Scheme]*Series{
		analysis.SchemeVoting:        {Label: "voting (min copies per target)"},
		analysis.SchemeAvailableCopy: {Label: "available copy (min copies per target)"},
		analysis.SchemeNaive:         {Label: "naive available copy (min copies per target)"},
	}
	for _, target := range targets {
		rows, err := analysis.EqualAvailabilityCosts(rho, target, x, 21)
		if err != nil {
			return Figure{}, err
		}
		nines := -math.Log10(1 - target)
		for _, r := range rows {
			s := series[r.Scheme]
			s.X = append(s.X, nines)
			s.Y = append(s.Y, r.Cost)
		}
	}
	return Figure{
		ID: "equal-availability",
		Title: fmt.Sprintf("Equal-availability comparison (rho=%.2f, %g:1 reads:writes): "+
			"transmissions per write+reads at minimal copy counts", rho, x),
		XLabel: "availability target (nines)",
		YLabel: "high-level transmissions",
		Series: []Series{
			*series[analysis.SchemeVoting],
			*series[analysis.SchemeAvailableCopy],
			*series[analysis.SchemeNaive],
		},
	}, nil
}
