package figures

import (
	"strings"
	"testing"
)

func TestRhoRange(t *testing.T) {
	r := RhoRange(21)
	if len(r) != 21 || r[0] != 0 || r[20] != 0.20 {
		t.Fatalf("RhoRange = %v", r)
	}
	if len(RhoRange(0)) != 21 {
		t.Fatal("default points mismatch")
	}
}

func TestFigure9Shape(t *testing.T) {
	fig, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	// At every plotted rho > 0: AC(3) >= NA(3) > V(6), and all curves
	// decreasing in rho.
	ac, na, v := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range ac.X {
		if ac.Y[i] < na.Y[i]-1e-12 {
			t.Fatalf("rho=%v: AC %v < NA %v", ac.X[i], ac.Y[i], na.Y[i])
		}
		if ac.X[i] > 0.01 && na.Y[i] <= v.Y[i] {
			t.Fatalf("rho=%v: NA %v <= V %v", ac.X[i], na.Y[i], v.Y[i])
		}
		if i > 0 {
			for _, s := range fig.Series {
				if s.Y[i] > s.Y[i-1]+1e-12 {
					t.Fatalf("series %q increases at rho=%v", s.Label, s.X[i])
				}
			}
		}
	}
	// The curves start at 1 (perfect sites).
	for _, s := range fig.Series {
		if s.Y[0] != 1 {
			t.Fatalf("series %q starts at %v, want 1", s.Label, s.Y[0])
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	fig, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// Same dominance, 4 copies vs 8 voting copies.
	ac, na, v := fig.Series[0], fig.Series[1], fig.Series[2]
	last := len(ac.X) - 1
	if !(ac.Y[last] > na.Y[last] && na.Y[last] > v.Y[last]) {
		t.Fatalf("at rho=0.2: AC %v, NA %v, V %v — expected strict ordering",
			ac.Y[last], na.Y[last], v.Y[last])
	}
	if !strings.Contains(fig.Title, "4 Available Copies and 8 Voting Copies") {
		t.Fatalf("title = %q", fig.Title)
	}
}

func TestFigure11Shape(t *testing.T) {
	fig, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5 (3 voting ratios + 2 AC)", len(fig.Series))
	}
	// Voting curves ordered by read ratio, all above AC, AC above naive;
	// naive is flat at 1 (one multicast per write).
	v1, v2, v4 := fig.Series[0], fig.Series[1], fig.Series[2]
	ac, na := fig.Series[3], fig.Series[4]
	for i := range v1.X {
		if !(v1.Y[i] < v2.Y[i] && v2.Y[i] < v4.Y[i]) {
			t.Fatalf("n=%v: voting ratio ordering broken", v1.X[i])
		}
		if !(na.Y[i] < ac.Y[i] && ac.Y[i] < v1.Y[i]) {
			t.Fatalf("n=%v: scheme ordering broken: na=%v ac=%v v=%v",
				v1.X[i], na.Y[i], ac.Y[i], v1.Y[i])
		}
		if na.Y[i] != 1 {
			t.Fatalf("naive multicast cost = %v, want 1", na.Y[i])
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	fig, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	v1, ac, na := fig.Series[0], fig.Series[3], fig.Series[4]
	for i, n := range v1.X {
		if !(na.Y[i] < ac.Y[i] && ac.Y[i] < v1.Y[i]) {
			t.Fatalf("n=%v: unicast ordering broken", n)
		}
		// Naive unicast write is exactly n-1.
		if na.Y[i] != n-1 {
			t.Fatalf("naive unicast cost at n=%v is %v, want %v", n, na.Y[i], n-1)
		}
		// Everything grows with n in the unicast environment.
		if i > 0 && (v1.Y[i] <= v1.Y[i-1] || ac.Y[i] <= ac.Y[i-1]) {
			t.Fatalf("unicast costs not increasing at n=%v", n)
		}
	}
}

func TestWithSimulation(t *testing.T) {
	fig, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	fig, err = WithSimulation(fig, 3, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	simSeries := fig.Series[len(fig.Series)-1]
	if len(simSeries.X) != 4 {
		t.Fatalf("simulated points = %d", len(simSeries.X))
	}
	for _, y := range simSeries.Y {
		if y < 0.9 || y > 1 {
			t.Fatalf("simulated availability %v implausible", y)
		}
	}
}

func TestTheorem41AllHold(t *testing.T) {
	rows, err := Theorem41()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if !r.Holds {
			t.Fatalf("theorem violated at n=%d rho=%v: AC=%v V=%v", r.N, r.Rho, r.AC, r.Voting)
		}
	}
}

func TestCostTable(t *testing.T) {
	rows, err := CostTable([]int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 2 n x 3 schemes x 2 modes
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Write <= 0 {
			t.Fatalf("non-positive write cost: %+v", r)
		}
		if r.Scheme == "voting" && r.Recovery != 0 {
			t.Fatalf("voting recovery cost = %v, want 0", r.Recovery)
		}
	}
}

func TestCSV(t *testing.T) {
	fig, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	csv := CSV(fig)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 22 { // header + 21 rho values
		t.Fatalf("lines = %d, want 22", len(lines))
	}
	if !strings.HasPrefix(lines[0], "x,") {
		t.Fatalf("header = %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != 3 {
		t.Fatalf("columns = %d, want 3 series", got)
	}
}

func TestRender(t *testing.T) {
	fig, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	out := Render(fig, 60, 16)
	if !strings.Contains(out, "figure11") || !strings.Contains(out, "A = ") {
		t.Fatalf("render output missing metadata:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 16 {
		t.Fatal("render output too short")
	}
}
