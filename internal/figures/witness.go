package figures

import (
	"fmt"

	"relidev/internal/analysis"
)

// FigureWitness is an extension figure (not in the paper; from its
// reference [10], Pâris's variable-number-of-copies voting): the
// availability of 2 data copies + 1 witness tracks 3 full voting copies
// exactly while storing only ~2/3 of the data, and 1 data copy + 2
// witnesses shows the price of witness-majority quorums.
func FigureWitness() (Figure, error) {
	rhos := RhoRange(21)
	type cfg struct {
		label string
		eval  func(rho float64) (float64, error)
	}
	blocksFor := func(d, w int) float64 {
		blocks, err := analysis.WitnessStorageBlocks(d, w, 128, 512)
		if err != nil {
			return 0
		}
		return blocks
	}
	configs := []cfg{
		{
			label: fmt.Sprintf("3 full copies (storage %.0f blocks)", blocksFor(3, 0)),
			eval:  func(rho float64) (float64, error) { return analysis.AvailabilityVoting(3, rho) },
		},
		{
			label: fmt.Sprintf("2 copies + 1 witness (storage %.0f blocks)", blocksFor(2, 1)),
			eval:  func(rho float64) (float64, error) { return analysis.AvailabilityVotingWitnesses(2, 1, rho) },
		},
		{
			label: fmt.Sprintf("1 copy + 2 witnesses (storage %.0f blocks)", blocksFor(1, 2)),
			eval:  func(rho float64) (float64, error) { return analysis.AvailabilityVotingWitnesses(1, 2, rho) },
		},
		{
			label: fmt.Sprintf("2 full copies (storage %.0f blocks)", blocksFor(2, 0)),
			eval:  func(rho float64) (float64, error) { return analysis.AvailabilityVoting(2, rho) },
		},
	}
	var series []Series
	for _, c := range configs {
		s := Series{Label: c.label, X: rhos}
		for _, rho := range rhos {
			a, err := c.eval(rho)
			if err != nil {
				return Figure{}, err
			}
			s.Y = append(s.Y, a)
		}
		series = append(series, s)
	}
	return Figure{
		ID:     "witness",
		Title:  "Extension: Voting with Witnesses [10] — availability vs storage",
		XLabel: "rho = lambda/mu",
		YLabel: "availability",
		Series: series,
	}, nil
}
