// Package figures regenerates every figure of the paper's evaluation:
//
//	Figure 9  — availability, 3 available/naive copies vs 6 voting copies
//	Figure 10 — availability, 4 available/naive copies vs 8 voting copies
//	Figure 11 — multi-cast traffic per (1 write + x reads), ρ = 0.05
//	Figure 12 — unique-addressing traffic per (1 write + x reads), ρ = 0.05
//
// plus machine-checked renditions of Theorem 4.1 and the §5 cost table.
// Each generator returns plain numeric series; Render and CSV turn them
// into an ASCII plot or comma-separated data for external plotting.
package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"relidev/internal/analysis"
	"relidev/internal/sim"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a set of curves with axis metadata.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// RhoRange returns the ρ grid the paper plots: 0 to 0.20.
func RhoRange(points int) []float64 {
	if points < 2 {
		points = 21
	}
	out := make([]float64, points)
	for i := range out {
		out[i] = 0.20 * float64(i) / float64(points-1)
	}
	return out
}

// availabilityFigure builds a Figure 9/10-style chart: nAC available /
// naive copies against nVote voting copies.
func availabilityFigure(id string, nAC, nVote int) (Figure, error) {
	rhos := RhoRange(21)
	mk := func(label string, f func(int, float64) (float64, error), n int) (Series, error) {
		s := Series{Label: label, X: rhos}
		for _, rho := range rhos {
			a, err := f(n, rho)
			if err != nil {
				return Series{}, err
			}
			s.Y = append(s.Y, a)
		}
		return s, nil
	}
	ac, err := mk(fmt.Sprintf("available copy (n=%d)", nAC), analysis.AvailabilityAC, nAC)
	if err != nil {
		return Figure{}, err
	}
	na, err := mk(fmt.Sprintf("naive available copy (n=%d)", nAC), analysis.AvailabilityNaive, nAC)
	if err != nil {
		return Figure{}, err
	}
	v, err := mk(fmt.Sprintf("voting (n=%d)", nVote), analysis.AvailabilityVoting, nVote)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: id,
		Title: fmt.Sprintf("Availabilities for %d Available Copies and %d Voting Copies",
			nAC, nVote),
		XLabel: "rho = lambda/mu",
		YLabel: "availability",
		Series: []Series{ac, na, v},
	}, nil
}

// Figure9 reproduces Figure 9: three available copies vs six voting
// copies over ρ in [0, 0.20].
func Figure9() (Figure, error) { return availabilityFigure("figure9", 3, 6) }

// Figure10 reproduces Figure 10: four available copies vs eight voting
// copies.
func Figure10() (Figure, error) { return availabilityFigure("figure10", 4, 8) }

// trafficFigure builds a Figure 11/12-style chart: expected transmissions
// for one write plus x reads, as a function of the number of sites n, at
// ρ = 0.05, with the voting curve drawn for x in {1, 2, 4} (read:write
// ratios 1:1, 2:1 and 4:1) and the flat available copy curves.
func trafficFigure(id string, multicast bool) (Figure, error) {
	const rho = 0.05
	ns := []int{2, 3, 4, 5, 6, 7, 8}
	nsF := make([]float64, len(ns))
	for i, n := range ns {
		nsF[i] = float64(n)
	}
	costsOf := func(s analysis.Scheme, n int) (analysis.Costs, error) {
		if multicast {
			return analysis.MulticastCosts(s, n, rho)
		}
		return analysis.UnicastCosts(s, n, rho)
	}
	var out []Series
	for _, x := range []float64{1, 2, 4} {
		s := Series{Label: fmt.Sprintf("voting, %g:1 reads:writes", x), X: nsF}
		for _, n := range ns {
			c, err := costsOf(analysis.SchemeVoting, n)
			if err != nil {
				return Figure{}, err
			}
			s.Y = append(s.Y, analysis.WorkloadCost(c, x))
		}
		out = append(out, s)
	}
	for _, sc := range []struct {
		s     analysis.Scheme
		label string
	}{
		{analysis.SchemeAvailableCopy, "available copy (any read ratio)"},
		{analysis.SchemeNaive, "naive available copy (any read ratio)"},
	} {
		s := Series{Label: sc.label, X: nsF}
		for _, n := range ns {
			c, err := costsOf(sc.s, n)
			if err != nil {
				return Figure{}, err
			}
			s.Y = append(s.Y, analysis.WorkloadCost(c, 1))
		}
		out = append(out, s)
	}
	env := "Multi-cast"
	if !multicast {
		env = "Unique Address"
	}
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s Results (transmissions per one write + x reads, rho=0.05)", env),
		XLabel: "number of sites n",
		YLabel: "high-level transmissions",
		Series: out,
	}, nil
}

// Figure11 reproduces Figure 11 (multi-cast environment).
func Figure11() (Figure, error) { return trafficFigure("figure11", true) }

// Figure12 reproduces Figure 12 (unique addressing environment).
func Figure12() (Figure, error) { return trafficFigure("figure12", false) }

// WithSimulation appends a simulated-availability series (discrete-event
// run of the matching state machine) to a Figure 9/10-style figure, at a
// few spot values of ρ, so analytic and measured curves can be compared.
func WithSimulation(fig Figure, nAC int, horizon float64, seed int64) (Figure, error) {
	spots := []float64{0.05, 0.10, 0.15, 0.20}
	s := Series{Label: fmt.Sprintf("available copy (n=%d), simulated", nAC)}
	for _, rho := range spots {
		m, err := sim.NewACModel(nAC)
		if err != nil {
			return Figure{}, err
		}
		res, err := sim.SimulateAvailability(m, nAC, rho, horizon, seed)
		if err != nil {
			return Figure{}, err
		}
		s.X = append(s.X, rho)
		s.Y = append(s.Y, res.Availability)
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// TheoremRow is one checked instance of Theorem 4.1.
type TheoremRow struct {
	N      int
	Rho    float64
	AC     float64
	Voting float64 // A_V(2n-1) = A_V(2n)
	Holds  bool
}

// Theorem41 evaluates Theorem 4.1 (A_A(n) > A_V(2n-1) for ρ <= 1) over a
// grid and reports each instance.
func Theorem41() ([]TheoremRow, error) {
	var rows []TheoremRow
	for n := 2; n <= 6; n++ {
		for _, rho := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
			ac, err := analysis.AvailabilityAC(n, rho)
			if err != nil {
				return nil, err
			}
			v, err := analysis.AvailabilityVoting(2*n-1, rho)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TheoremRow{N: n, Rho: rho, AC: ac, Voting: v, Holds: ac >= v})
		}
	}
	return rows, nil
}

// CostRow is one line of the §5 cost table.
type CostRow struct {
	Scheme   string
	Mode     string
	N        int
	Write    float64
	Read     float64
	Recovery float64
}

// CostTable evaluates the full §5 cost model at ρ = 0.05.
func CostTable(ns []int) ([]CostRow, error) {
	const rho = 0.05
	var rows []CostRow
	for _, n := range ns {
		for _, sc := range []analysis.Scheme{analysis.SchemeVoting, analysis.SchemeAvailableCopy, analysis.SchemeNaive} {
			for _, multicast := range []bool{true, false} {
				var c analysis.Costs
				var err error
				mode := "multicast"
				if multicast {
					c, err = analysis.MulticastCosts(sc, n, rho)
				} else {
					mode = "unicast"
					c, err = analysis.UnicastCosts(sc, n, rho)
				}
				if err != nil {
					return nil, err
				}
				rows = append(rows, CostRow{
					Scheme: sc.String(), Mode: mode, N: n,
					Write: c.Write, Read: c.Read, Recovery: c.Recovery,
				})
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].N != rows[j].N {
			return rows[i].N < rows[j].N
		}
		if rows[i].Mode != rows[j].Mode {
			return rows[i].Mode < rows[j].Mode
		}
		return rows[i].Scheme < rows[j].Scheme
	})
	return rows, nil
}

// CSV renders a figure as comma-separated values: one row per X value,
// one column per series.
func CSV(fig Figure) string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range fig.Series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteString("\n")
	// Collect the union of X values (series may have different grids).
	xs := map[float64]bool{}
	for _, s := range fig.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range fig.Series {
			val, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, ",%.9f", val)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Render draws the figure as a text plot, one symbol per series.
func Render(fig Figure, width, height int) string {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	symbols := []byte{'A', 'N', 'V', 'W', 'X', 'o', '+', '*'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range fig.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if minX >= maxX {
		maxX = minX + 1
	}
	if minY >= maxY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range fig.Series {
		sym := symbols[si%len(symbols)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = sym
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "y: %s  [%.6g .. %.6g]\n", fig.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   x: %s  [%g .. %g]\n", fig.XLabel, minX, maxX)
	for si, s := range fig.Series {
		fmt.Fprintf(&b, "   %c = %s\n", symbols[si%len(symbols)], s.Label)
	}
	return b.String()
}
