package markov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(0); err == nil {
		t.Fatal("accepted zero states")
	}
	if _, err := NewChain(-3); err == nil {
		t.Fatal("accepted negative states")
	}
}

func TestSetRateValidation(t *testing.T) {
	c, err := NewChain(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 0, 1); err == nil {
		t.Fatal("accepted self transition")
	}
	if err := c.SetRate(0, 5, 1); err == nil {
		t.Fatal("accepted out-of-range state")
	}
	if err := c.SetRate(0, 1, -2); err == nil {
		t.Fatal("accepted negative rate")
	}
	if err := c.SetRate(0, 1, math.NaN()); err == nil {
		t.Fatal("accepted NaN rate")
	}
	if err := c.SetRate(0, 1, 3); err != nil {
		t.Fatalf("rejected valid rate: %v", err)
	}
	if got := c.Rate(0, 1); got != 3 {
		t.Fatalf("Rate = %v, want 3", got)
	}
	if got := c.Rate(9, 9); got != 0 {
		t.Fatalf("out-of-range Rate = %v, want 0", got)
	}
}

func TestTwoStateChain(t *testing.T) {
	// Classic up/down machine: pi_up = mu/(lambda+mu).
	lambda, mu := 0.3, 2.0
	c, _ := NewChain(2)
	c.SetRate(0, 1, lambda) // up -> down
	c.SetRate(1, 0, mu)     // down -> up
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lambda + mu)
	if !almostEqual(pi[0], want, 1e-12) {
		t.Fatalf("pi_up = %v, want %v", pi[0], want)
	}
	if !almostEqual(pi[0]+pi[1], 1, 1e-12) {
		t.Fatalf("probabilities sum to %v", pi[0]+pi[1])
	}
}

func TestSingleStateChain(t *testing.T) {
	c, _ := NewChain(1)
	pi, err := c.SteadyState()
	if err != nil || len(pi) != 1 || pi[0] != 1 {
		t.Fatalf("pi = %v, err = %v", pi, err)
	}
}

func TestBirthDeathMatchesBinomial(t *testing.T) {
	// n independent sites with rates lambda, mu collapse to a birth-death
	// chain whose steady state is Binomial(n, mu/(lambda+mu)).
	const n = 6
	lambda, mu := 0.1, 1.0
	c, _ := NewChain(n + 1)
	for k := 0; k <= n; k++ {
		if k > 0 {
			c.SetRate(k, k-1, float64(k)*lambda)
		}
		if k < n {
			c.SetRate(k, k+1, float64(n-k)*mu)
		}
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	p := mu / (lambda + mu)
	binom := func(n, k int) float64 {
		out := 1.0
		for i := 1; i <= k; i++ {
			out *= float64(n-k+i) / float64(i)
		}
		return out
	}
	for k := 0; k <= n; k++ {
		want := binom(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
		if !almostEqual(pi[k], want, 1e-12) {
			t.Fatalf("pi[%d] = %v, want %v", k, pi[k], want)
		}
	}
}

func TestReducibleChainRejected(t *testing.T) {
	// Two disconnected components: no unique steady state.
	c, _ := NewChain(4)
	c.SetRate(0, 1, 1)
	c.SetRate(1, 0, 1)
	c.SetRate(2, 3, 1)
	c.SetRate(3, 2, 1)
	if _, err := c.SteadyState(); !errors.Is(err, ErrReducible) {
		t.Fatalf("err = %v, want ErrReducible", err)
	}
}

func TestAbsorbingChainHasDegenerateSteadyState(t *testing.T) {
	// 0 -> 1 with no way back: all mass ends in state 1.
	c, _ := NewChain(2)
	c.SetRate(0, 1, 1)
	pi, err := c.SteadyState()
	if err != nil {
		// Rejection is also acceptable behaviour for a chain that is not
		// irreducible; accept either outcome but never a wrong answer.
		return
	}
	if !almostEqual(pi[1], 1, 1e-9) || !almostEqual(pi[0], 0, 1e-9) {
		t.Fatalf("pi = %v, want [0 1]", pi)
	}
}

func TestDetailedBalanceRandomBirthDeath(t *testing.T) {
	// Property: for random birth-death chains, the solver satisfies the
	// detailed balance equations pi_k q_{k,k+1} = pi_{k+1} q_{k+1,k}.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(10)
		c, _ := NewChain(n)
		up := make([]float64, n-1)
		down := make([]float64, n-1)
		for k := 0; k < n-1; k++ {
			up[k] = 0.1 + rng.Float64()*5
			down[k] = 0.1 + rng.Float64()*5
			c.SetRate(k, k+1, up[k])
			c.SetRate(k+1, k, down[k])
		}
		pi, err := c.SteadyState()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				t.Fatalf("trial %d: negative probability %v", trial, p)
			}
			sum += p
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("trial %d: sum = %v", trial, sum)
		}
		for k := 0; k < n-1; k++ {
			lhs := pi[k] * up[k]
			rhs := pi[k+1] * down[k]
			if !almostEqual(lhs, rhs, 1e-9*(1+lhs)) {
				t.Fatalf("trial %d: detailed balance broken at %d: %v vs %v", trial, k, lhs, rhs)
			}
		}
	}
}

func TestGlobalBalanceRandomDenseChain(t *testing.T) {
	// Property: for random irreducible dense chains, flow in equals flow
	// out of every state.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		c, _ := NewChain(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					c.SetRate(i, j, 0.05+rng.Float64())
				}
			}
		}
		pi, err := c.SteadyState()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			var in, out float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				in += pi[j] * c.Rate(j, i)
				out += pi[i] * c.Rate(i, j)
			}
			if !almostEqual(in, out, 1e-9*(1+in)) {
				t.Fatalf("trial %d state %d: in %v != out %v", trial, i, in, out)
			}
		}
	}
}

func TestProbe(t *testing.T) {
	c, _ := NewChain(3)
	c.SetRate(0, 1, 1)
	c.SetRate(1, 2, 1)
	c.SetRate(2, 0, 1)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	got := c.Probe(pi, func(s int) bool { return s != 1 })
	if !almostEqual(got, 2.0/3.0, 1e-12) {
		t.Fatalf("Probe = %v, want 2/3", got)
	}
	if all := c.Probe(pi, func(int) bool { return true }); !almostEqual(all, 1, 1e-12) {
		t.Fatalf("Probe(all) = %v", all)
	}
}

func TestMeanTimeToAbsorption(t *testing.T) {
	// Pure death chain 2 -> 1 -> 0 with rates 2 and 1: expected time from
	// state 2 to state 0 is 1/2 + 1/1.
	c, _ := NewChain(3)
	c.SetRate(2, 1, 2)
	c.SetRate(1, 0, 1)
	got, err := c.MeanTimeToAbsorption(2, func(s int) bool { return s == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("MTTA = %v, want 1.5", got)
	}
	// Starting in the absorbing set costs nothing.
	got, err = c.MeanTimeToAbsorption(0, func(s int) bool { return s == 0 })
	if err != nil || got != 0 {
		t.Fatalf("absorbed start = %v, %v", got, err)
	}
}

func TestMeanTimeToAbsorptionWithRepair(t *testing.T) {
	// Birth-death on {0,1,2}, absorb at 0: M/M/1-like first passage.
	// From 2: t2 = 1/d2 + t1; from 1: t1 = 1/(u1+d1) + (u1 t2)/(u1+d1).
	u1, d1, d2 := 3.0, 1.0, 2.0
	c, _ := NewChain(3)
	c.SetRate(2, 1, d2)
	c.SetRate(1, 0, d1)
	c.SetRate(1, 2, u1)
	got, err := c.MeanTimeToAbsorption(2, func(s int) bool { return s == 0 })
	if err != nil {
		t.Fatal(err)
	}
	// Solve by hand: t1 = (1 + u1*t2)/(u1+d1), t2 = 1/d2 + t1
	// => t1 = (1 + u1/d2 + u1 t1)/(u1+d1) => t1 (1 - u1/(u1+d1)) = (1+u1/d2)/(u1+d1)
	t1 := (1 + u1/d2) / d1
	want := 1/d2 + t1
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("MTTA = %v, want %v", got, want)
	}
}

func TestMeanTimeToAbsorptionErrors(t *testing.T) {
	c, _ := NewChain(2)
	c.SetRate(0, 1, 1)
	c.SetRate(1, 0, 1)
	if _, err := c.MeanTimeToAbsorption(5, func(int) bool { return false }); err == nil {
		t.Fatal("accepted out-of-range start")
	}
	if _, err := c.MeanTimeToAbsorption(0, nil); err == nil {
		t.Fatal("accepted nil predicate")
	}
	if _, err := c.MeanTimeToAbsorption(0, func(int) bool { return false }); err == nil {
		t.Fatal("accepted chain with no absorbing states")
	}
	// A transient state that cannot move is a modelling error.
	c2, _ := NewChain(3)
	c2.SetRate(0, 1, 1) // state 1 has no outgoing rate
	if _, err := c2.MeanTimeToAbsorption(0, func(s int) bool { return s == 2 }); err == nil {
		t.Fatal("accepted stuck transient state")
	}
}

func TestTransientTwoState(t *testing.T) {
	// Up/down machine: p_up(t) = pi + (1-pi) e^{-(l+m)t} starting up.
	lambda, mu := 0.4, 1.6
	c, _ := NewChain(2)
	c.SetRate(0, 1, lambda)
	c.SetRate(1, 0, mu)
	pi := mu / (lambda + mu)
	for _, tt := range []float64{0, 0.1, 0.5, 1, 3, 10} {
		p, err := c.Transient([]float64{1, 0}, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := pi + (1-pi)*math.Exp(-(lambda+mu)*tt)
		if !almostEqual(p[0], want, 1e-9) {
			t.Fatalf("p_up(%v) = %v, want %v", tt, p[0], want)
		}
		if !almostEqual(p[0]+p[1], 1, 1e-9) {
			t.Fatalf("p(%v) sums to %v", tt, p[0]+p[1])
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	// §4: A = lim p(t). A random irreducible chain's transient
	// distribution converges to the steady state.
	rng := rand.New(rand.NewSource(13))
	c, _ := NewChain(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				c.SetRate(i, j, 0.1+rng.Float64())
			}
		}
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	p0 := []float64{1, 0, 0, 0, 0}
	pt, err := c.Transient(p0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if !almostEqual(pt[i], pi[i], 1e-6) {
			t.Fatalf("p(100)[%d] = %v, steady state %v", i, pt[i], pi[i])
		}
	}
	// Monotone-ish approach: distance at t=5 is smaller than at t=0.5.
	dist := func(t1 float64) float64 {
		p, err := c.Transient(p0, t1)
		if err != nil {
			t.Fatal(err)
		}
		var d float64
		for i := range pi {
			d += math.Abs(p[i] - pi[i])
		}
		return d
	}
	if !(dist(5) < dist(0.5)) {
		t.Fatal("transient distribution not approaching the steady state")
	}
}

func TestTransientValidation(t *testing.T) {
	c, _ := NewChain(2)
	c.SetRate(0, 1, 1)
	c.SetRate(1, 0, 1)
	if _, err := c.Transient([]float64{1}, 1); err == nil {
		t.Fatal("accepted wrong-length distribution")
	}
	if _, err := c.Transient([]float64{0.5, 0.4}, 1); err == nil {
		t.Fatal("accepted non-normalised distribution")
	}
	if _, err := c.Transient([]float64{1, 0}, -1); err == nil {
		t.Fatal("accepted negative time")
	}
	if _, err := c.Transient([]float64{-0.5, 1.5}, 1); err == nil {
		t.Fatal("accepted negative probability")
	}
	// No transitions: distribution unchanged.
	c2, _ := NewChain(2)
	p, err := c2.Transient([]float64{0.3, 0.7}, 5)
	if err != nil || p[0] != 0.3 {
		t.Fatalf("static chain transient = %v, %v", p, err)
	}
}

func TestLabels(t *testing.T) {
	c, _ := NewChain(2)
	if err := c.SetLabel(0, "up"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLabel(5, "x"); err == nil {
		t.Fatal("accepted out-of-range label")
	}
	if c.Label(0) != "up" || c.Label(1) != "s1" || c.Label(9) != "s9" {
		t.Fatalf("labels = %q %q %q", c.Label(0), c.Label(1), c.Label(9))
	}
	if c.States() != 2 {
		t.Fatalf("States = %d", c.States())
	}
}
