// Package markov provides a small continuous-time Markov chain (CTMC)
// toolkit: build a chain from transition rates and solve for its steady
// state distribution.
//
// The paper derived its availability results (§4) symbolically with
// MACSYMA from the state-transition-rate diagrams of Figures 7 and 8.
// This package is the numeric counterpart: the same diagrams are encoded
// as chains (see the builders in internal/analysis) and solved by dense
// Gaussian elimination; the closed forms the paper reports are then
// cross-validated against the numeric solution in the test suites.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Chain is a finite CTMC described by its transition rates.
type Chain struct {
	n      int
	rates  [][]float64
	labels []string
}

// NewChain returns a chain with n states and no transitions.
func NewChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: chain needs at least one state, got %d", n)
	}
	rates := make([][]float64, n)
	for i := range rates {
		rates[i] = make([]float64, n)
	}
	return &Chain{n: n, rates: rates, labels: make([]string, n)}, nil
}

// States returns the number of states.
func (c *Chain) States() int { return c.n }

// SetLabel names a state for diagnostics.
func (c *Chain) SetLabel(i int, label string) error {
	if i < 0 || i >= c.n {
		return fmt.Errorf("markov: state %d out of range", i)
	}
	c.labels[i] = label
	return nil
}

// Label returns a state's name ("s<i>" when unnamed).
func (c *Chain) Label(i int) string {
	if i < 0 || i >= c.n || c.labels[i] == "" {
		return fmt.Sprintf("s%d", i)
	}
	return c.labels[i]
}

// SetRate sets the transition rate from state i to state j. Self loops
// and negative rates are rejected.
func (c *Chain) SetRate(i, j int, rate float64) error {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		return fmt.Errorf("markov: transition %d->%d out of range", i, j)
	}
	if i == j {
		return fmt.Errorf("markov: self transition %d->%d", i, j)
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("markov: rate %v for %d->%d is not a finite non-negative number", rate, i, j)
	}
	c.rates[i][j] = rate
	return nil
}

// Rate returns the transition rate from i to j (zero when absent or out
// of range).
func (c *Chain) Rate(i, j int) float64 {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		return 0
	}
	return c.rates[i][j]
}

// ErrReducible is returned when the steady state is not unique — the
// chain has unreachable or absorbing components.
var ErrReducible = errors.New("markov: chain has no unique steady state")

// SteadyState solves πQ = 0, Σπ = 1 for the stationary distribution π,
// where Q is the infinitesimal generator built from the rates. The chain
// must be irreducible.
func (c *Chain) SteadyState() ([]float64, error) {
	n := c.n
	if n == 1 {
		return []float64{1}, nil
	}
	// Build the transposed generator: a[i][j] = Q[j][i], so that the
	// linear system a·π = 0 row-wise encodes the balance equations.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for i := 0; i < n; i++ {
		var out float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			out += c.rates[i][j]
			a[j][i] += c.rates[i][j]
		}
		a[i][i] -= out
	}
	// Replace the last balance equation (linearly dependent on the rest)
	// with the normalisation Σπ = 1.
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1

	pi, err := solve(a)
	if err != nil {
		return nil, err
	}
	// Guard against tiny negative components from roundoff, and reject
	// genuinely negative solutions (reducible chains).
	const tol = 1e-9
	for i, p := range pi {
		if p < -tol {
			return nil, fmt.Errorf("%w: state %s has stationary probability %g", ErrReducible, c.Label(i), p)
		}
		if p < 0 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// augmented matrix a (n rows, n+1 columns) and returns the solution.
func solve(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[best][col]) {
				best = r
			}
		}
		if math.Abs(a[best][col]) < 1e-14 {
			return nil, ErrReducible
		}
		a[col], a[best] = a[best], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Transient returns the state distribution p(t) after running the chain
// for time t from the initial distribution p0, computed by
// uniformization:
//
//	p(t) = Σ_k e^{-Λt} (Λt)^k / k! · p0 Pᵏ,  P = I + Q/Λ
//
// §4 defines availability as "the limiting value of the probability p(t)
// that the system will be operating correctly at time t"; Transient
// computes that p(t) so the convergence to the steady state can be
// observed directly.
func (c *Chain) Transient(p0 []float64, t float64) ([]float64, error) {
	if len(p0) != c.n {
		return nil, fmt.Errorf("markov: initial distribution has %d entries for %d states", len(p0), c.n)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: time %v must be finite and non-negative", t)
	}
	var sum float64
	for _, p := range p0 {
		if p < 0 {
			return nil, fmt.Errorf("markov: negative initial probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("markov: initial distribution sums to %v", sum)
	}
	// Uniformization rate: at least the largest total outflow.
	var lambda float64
	for i := 0; i < c.n; i++ {
		var out float64
		for j := 0; j < c.n; j++ {
			if j != i {
				out += c.rates[i][j]
			}
		}
		if out > lambda {
			lambda = out
		}
	}
	cur := make([]float64, c.n)
	copy(cur, p0)
	if lambda == 0 || t == 0 {
		return cur, nil
	}
	lambda *= 1.05 // margin keeps P's diagonal strictly positive

	// e^{-Λt} underflows for large Λt; split the horizon into steps with
	// ΛΔt <= 50 and chain them.
	if lambda*t > 50 {
		steps := int(lambda*t/50) + 1
		dt := t / float64(steps)
		p := cur
		for s := 0; s < steps; s++ {
			var err error
			p, err = c.Transient(p, dt)
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	}

	out := make([]float64, c.n)
	lt := lambda * t
	// Poisson weights computed iteratively; truncate when the cumulative
	// mass is within 1e-12 of one.
	weight := math.Exp(-lt)
	cumulative := weight
	for i := range cur {
		out[i] = weight * cur[i]
	}
	next := make([]float64, c.n)
	for k := 1; cumulative < 1-1e-12; k++ {
		// cur <- cur · P, with P = I + Q/Λ.
		for j := 0; j < c.n; j++ {
			var in float64
			for i := 0; i < c.n; i++ {
				if i == j {
					continue
				}
				in += cur[i] * c.rates[i][j]
			}
			var outflow float64
			for l := 0; l < c.n; l++ {
				if l != j {
					outflow += c.rates[j][l]
				}
			}
			next[j] = cur[j]*(1-outflow/lambda) + in/lambda
		}
		cur, next = next, cur
		weight *= lt / float64(k)
		cumulative += weight
		for i := range cur {
			out[i] += weight * cur[i]
		}
		if k > 10_000_000 {
			return nil, fmt.Errorf("markov: uniformization did not converge (Λt = %v)", lt)
		}
	}
	return out, nil
}

// MeanTimeToAbsorption returns the expected time to first reach any
// state selected by absorbing, starting from state start. It solves the
// standard first-passage system over the transient states:
//
//	out_i · t_i − Σ_{j transient} q_ij · t_j = 1
//
// This is the reliability counterpart of SteadyState: with "absorbing" =
// "the replicated block is inaccessible", the result is the system MTTF
// the paper's introduction motivates ("availability and reliability of a
// file can be made arbitrarily high").
func (c *Chain) MeanTimeToAbsorption(start int, absorbing func(int) bool) (float64, error) {
	if start < 0 || start >= c.n {
		return 0, fmt.Errorf("markov: start state %d out of range", start)
	}
	if absorbing == nil {
		return 0, errors.New("markov: nil absorbing predicate")
	}
	if absorbing(start) {
		return 0, nil
	}
	// Index the transient states.
	index := make(map[int]int)
	var transient []int
	for i := 0; i < c.n; i++ {
		if !absorbing(i) {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	if len(transient) == c.n {
		return math.Inf(1), fmt.Errorf("markov: no absorbing states: %w", ErrReducible)
	}
	m := len(transient)
	a := make([][]float64, m)
	for r, i := range transient {
		a[r] = make([]float64, m+1)
		var out float64
		for j := 0; j < c.n; j++ {
			if j == i {
				continue
			}
			rate := c.rates[i][j]
			if rate == 0 {
				continue
			}
			out += rate
			if col, ok := index[j]; ok {
				a[r][col] -= rate
			}
		}
		if out == 0 {
			// A transient state with no way out can never be absorbed.
			return math.Inf(1), fmt.Errorf("markov: state %s is absorbing-by-accident: %w", c.Label(i), ErrReducible)
		}
		a[r][index[i]] += out
		a[r][m] = 1
	}
	t, err := solve(a)
	if err != nil {
		return 0, err
	}
	return t[index[start]], nil
}

// Probe sums the stationary probability of the states selected by keep.
// It is the building block for availability measures: availability is
// the probed mass of the "block is accessible" states.
func (c *Chain) Probe(pi []float64, keep func(state int) bool) float64 {
	var sum float64
	for i := 0; i < c.n && i < len(pi); i++ {
		if keep(i) {
			sum += pi[i]
		}
	}
	return sum
}
