package protocol

import "context"

// Operation labels. The observability layer tags the context of every
// controller operation with one of these so that the transport can
// attribute its §5 transmission accounting to the operation that caused
// the traffic (write, read, or recovery — the three rows of the §5 cost
// tables). The label rides the context through any transport decorators
// (fault injection, metering) down to the network that does the
// counting.
const (
	OpWrite    = "write"
	OpRead     = "read"
	OpRecovery = "recovery"
	// OpRepair labels background anti-entropy traffic (DESIGN.md §13):
	// summary exchanges and paged block fetches issued by internal/repair
	// after a site has been readmitted. Kept distinct from OpRecovery so
	// the §5 tables — which price only the readmission exchange — are not
	// polluted by the background stream.
	OpRepair = "repair"
	// OpTelemetry labels cross-site telemetry scrapes (DESIGN.md §16):
	// the aggregation plane's registry pulls. Telemetry is not one of
	// the §5 rows — the paper prices file operations, not monitoring —
	// so the class exists purely to keep scrape traffic out of the
	// write/read/recovery/repair brackets while still appearing in the
	// KindOps table, where the wirecheck/UnpricedKinds contract can see
	// that it is deliberate, attributed traffic rather than silent skew.
	OpTelemetry = "telemetry"
)

type opCtxKey struct{}

// WithOp labels ctx with the protocol-level operation the enclosed
// messages belong to.
func WithOp(ctx context.Context, op string) context.Context {
	return context.WithValue(ctx, opCtxKey{}, op)
}

// CtxOp returns the operation label attached by WithOp, or "" when the
// context is unlabelled (uninstrumented callers; their traffic is
// counted only in the aggregate totals).
func CtxOp(ctx context.Context) string {
	op, _ := ctx.Value(opCtxKey{}).(string)
	return op
}
