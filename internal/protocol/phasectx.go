package protocol

import "context"

// Phase labels for critical-path latency attribution (DESIGN.md §15).
// Each names one slice of an operation's wall time; the top-level
// phases (lock wait, fan-out, rpc, local) partition the operation, so
// their durations sum to the end-to-end latency, while sub-phases
// (straggler) re-slice time already attributed to their parent phase.
const (
	// PhaseLockWait is the time an operation spent waiting to acquire
	// its per-block stripe in scheme.OpLocks before the protocol ran.
	PhaseLockWait = "lock_wait"
	// PhaseFanout is the time inside quorum fan-outs (Broadcast/Notify):
	// the whole concurrent round, bounded by the slowest destination.
	PhaseFanout = "fanout"
	// PhaseRPC is the time inside point-to-point rounds (Call/Fetch).
	PhaseRPC = "rpc"
	// PhaseLocal is the residual: local compute and store time not
	// spent under the lock queue or on the wire. Recorded implicitly at
	// span close as end-to-end minus the attributed phases.
	PhaseLocal = "local"
	// PhaseStraggler is the marginal wait charged to the slowest member
	// of a fan-out: how much later it answered than the second-slowest
	// destination. A sub-slice of PhaseFanout, so it is excluded from
	// the partition sum.
	PhaseStraggler = "straggler"
)

// A PhaseRecorder receives critical-path attribution from layers below
// the observability decorators — the fan-out internals of simnet and
// rpcnet, which alone can see per-destination completion times. The
// observability layer implements it; transports reach it through the
// operation context so they need no obs dependency.
//
// Now reads the recorder's injected clock (nanoseconds; logical under
// deterministic harnesses) so in-scope transports can measure
// durations without touching the wall clock themselves.
type PhaseRecorder interface {
	Now() int64
	RecordPhase(phase string, ns int64)
	RecordPeerRTT(to SiteID, ns int64)
}

type phaseCtxKey struct{}

// WithPhases attaches a phase recorder to ctx for the enclosed
// operation.
func WithPhases(ctx context.Context, r PhaseRecorder) context.Context {
	return context.WithValue(ctx, phaseCtxKey{}, r)
}

// CtxPhases returns the phase recorder attached by WithPhases, or nil
// when the operation is unattributed.
func CtxPhases(ctx context.Context) PhaseRecorder {
	r, _ := ctx.Value(phaseCtxKey{}).(PhaseRecorder)
	return r
}
