// Package protocol defines the inter-site protocol of the reliable
// device: site identities and states, the was-available sets of the
// available copy scheme, the request/response messages exchanged between
// sites, and the Transport abstraction the consistency algorithms run
// over.
//
// Two transports implement the interface: simnet (in-process simulated
// network, with the exact high-level transmission accounting of paper §5)
// and rpcnet (TCP + gob between real server processes).
package protocol

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"relidev/internal/block"
)

// SiteID identifies one of the n sites holding a copy of the device.
// Sites are numbered 0..n-1.
type SiteID int

// String implements fmt.Stringer.
func (s SiteID) String() string { return "site" + strconv.Itoa(int(s)) }

// SiteState is the per-site state of §3.2: a failed site has halted; a
// comatose site has restarted but does not yet know whether it holds the
// most recent version of the blocks; an available site is known current.
type SiteState int

// Site states. Values start at one so that the zero value is invalid.
const (
	StateFailed SiteState = iota + 1
	StateComatose
	StateAvailable
)

// String implements fmt.Stringer.
func (s SiteState) String() string {
	switch s {
	case StateFailed:
		return "failed"
	case StateComatose:
		return "comatose"
	case StateAvailable:
		return "available"
	default:
		return "invalid(" + strconv.Itoa(int(s)) + ")"
	}
}

// MaxSites bounds the number of sites so that SiteSet fits a machine
// word. The paper's analysis covers n <= 8; 64 leaves ample headroom.
const MaxSites = 64

// SiteSet is a set of sites, used for quorums and was-available sets.
type SiteSet uint64

// NewSiteSet returns the set containing the given sites.
func NewSiteSet(ids ...SiteID) SiteSet {
	var s SiteSet
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// FullSet returns the set {0, .., n-1}.
func FullSet(n int) SiteSet {
	if n <= 0 {
		return 0
	}
	if n >= MaxSites {
		return ^SiteSet(0)
	}
	return SiteSet(1)<<uint(n) - 1
}

// Add returns the set with id added.
func (s SiteSet) Add(id SiteID) SiteSet {
	if id < 0 || id >= MaxSites {
		return s
	}
	return s | 1<<uint(id)
}

// Remove returns the set with id removed.
func (s SiteSet) Remove(id SiteID) SiteSet {
	if id < 0 || id >= MaxSites {
		return s
	}
	return s &^ (1 << uint(id))
}

// Has reports whether id is in the set.
func (s SiteSet) Has(id SiteID) bool {
	return id >= 0 && id < MaxSites && s&(1<<uint(id)) != 0
}

// Union returns the union of the two sets.
func (s SiteSet) Union(other SiteSet) SiteSet { return s | other }

// Intersect returns the intersection of the two sets.
func (s SiteSet) Intersect(other SiteSet) SiteSet { return s & other }

// SubsetOf reports whether every member of s is in other.
func (s SiteSet) SubsetOf(other SiteSet) bool { return s&^other == 0 }

// Len returns the number of members.
func (s SiteSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s SiteSet) Empty() bool { return s == 0 }

// Members returns the members in increasing order.
func (s SiteSet) Members() []SiteID {
	out := make([]SiteID, 0, s.Len())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, SiteID(bits.TrailingZeros64(v)))
	}
	return out
}

// String implements fmt.Stringer.
func (s SiteSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	b.WriteByte('}')
	return b.String()
}

// Transport errors. A transport returns ErrSiteDown when the destination
// site has failed (fail-stop: a crashed process simply does not answer)
// and ErrSiteUnreachable when a (test-injected) partition separates the
// caller from an otherwise operational site. ErrTransient reports a
// single communication failure against a peer that is *not* suspected
// down: a stale connection, a lost message, an injected timeout. The
// distinction matters to the available copy scheme, whose was-available
// sets must shrink only on genuine fail-stop failures — a transient
// hiccup that ejected a live site from W_s would mis-state which sites
// hold the most recent write.
var (
	ErrSiteDown        = errors.New("protocol: destination site is down")
	ErrSiteUnreachable = errors.New("protocol: destination site is unreachable")
	ErrTransient       = errors.New("protocol: transient communication failure")

	// ErrSevered marks a failure of an exchange that was already
	// established when it broke: the peer accepted the connection and
	// then the stream died mid-request. Transports wrap it *alongside*
	// ErrTransient or ErrSiteDown (it refines, not replaces, the
	// severity classification). To a retrying client it means
	// "conclusive here, retryable elsewhere": the background repairer
	// fails over to another donor immediately instead of burning its
	// backoff budget against a peer that just dropped dead mid-stream.
	ErrSevered = errors.New("protocol: established exchange severed mid-stream")
)

// Request is the interface implemented by all protocol request messages.
type Request interface {
	// Kind names the request for logging and traffic accounting.
	Kind() string
}

// Response is the interface implemented by all protocol responses.
type Response interface {
	// RespKind names the response for logging.
	RespKind() string
}

// Result pairs a response with a per-destination error for broadcasts.
type Result struct {
	Resp Response
	Err  error
}

// Handler is implemented by a site's server side: it processes one
// request from a peer and produces a response. The context carries the
// caller's operation label and trace span (WithOp, WithSpan), so a
// handler can record causally-linked trace events; it is not used for
// cancellation — a site that accepted a request always answers it.
type Handler interface {
	Handle(ctx context.Context, from SiteID, req Request) (Response, error)
}

// Transport moves protocol messages between sites. Implementations count
// high-level transmissions per §5: in a multi-cast network a broadcast is
// one transmission regardless of the number of destinations; with unique
// addressing it is one transmission per destination. Responses are always
// individually addressed.
type Transport interface {
	// Call sends req from site `from` to site `to` and waits for the
	// response. Charged as two transmissions (request + response), which
	// is how §5 counts the recovery version-vector exchange.
	Call(ctx context.Context, from, to SiteID, req Request) (Response, error)

	// Fetch pulls data from one site, charged as a single transmission:
	// only the transfer itself is a high-level message (§5.1 charges a
	// voting read repair exactly one extra message).
	Fetch(ctx context.Context, from, to SiteID, req Request) (Response, error)

	// Broadcast sends req from site `from` to every site in dests and
	// collects the per-site results. Sites that are down appear in the
	// result map with ErrSiteDown and contribute no reply traffic.
	// Charged as one transmission (multicast networks) or one per
	// destination (unique addressing), plus one per reply.
	Broadcast(ctx context.Context, from SiteID, dests []SiteID, req Request) map[SiteID]Result

	// Notify sends req to every site in dests without charging for
	// replies: per-site acknowledgements are covered by the reliable
	// delivery assumption and are not high-level transmissions. Handler
	// errors are still reported for correctness.
	Notify(ctx context.Context, from SiteID, dests []SiteID, req Request) map[SiteID]Result
}

// BlockCopy carries one block during repair.
type BlockCopy struct {
	Index   block.Index
	Data    []byte
	Version block.Version
}

// String implements fmt.Stringer.
func (c BlockCopy) String() string {
	return fmt.Sprintf("%v@%v(%dB)", c.Index, c.Version, len(c.Data))
}
