package protocol

import (
	"encoding/gob"

	"relidev/internal/block"
)

// VoteRequest asks a site for its vote on one block (Figures 3 and 4):
// the site answers with the block's version number and the weight
// assigned to the site.
type VoteRequest struct {
	Block block.Index
}

// Kind implements Request.
func (VoteRequest) Kind() string { return "vote" }

// VoteReply is a site's vote.
type VoteReply struct {
	Version block.Version
	// Weight is the site's voting weight in thousandths, so that the
	// even-n tie-breaking adjustment of §4.1 (one copy's weight nudged by
	// a small quantity) is representable exactly.
	Weight int64
	State  SiteState
	// Witness marks a site that votes with version numbers but stores no
	// block data ([10]); witnesses cannot serve fetches or repairs.
	Witness bool
}

// RespKind implements Response.
func (VoteReply) RespKind() string { return "vote-reply" }

// FetchRequest asks for a copy of one block (voting read repair, Figure
// 3: request_block(t, k, B)).
type FetchRequest struct {
	Block block.Index
}

// Kind implements Request.
func (FetchRequest) Kind() string { return "fetch" }

// FetchReply returns the block contents.
type FetchReply struct {
	Data    []byte
	Version block.Version
}

// RespKind implements Response.
func (FetchReply) RespKind() string { return "fetch-reply" }

// PutRequest installs a block at a new version on the receiving site
// (voting: send_block(Q, k, B, v); available copy: the write broadcast).
//
// For the available copy schemes the request piggybacks the writer's
// current was-available set; recipients replace their stored set with it
// (§3.2: the information may be delayed by one write, which is how the
// atomic broadcast assumption is relaxed).
type PutRequest struct {
	Block   block.Index
	Data    []byte
	Version block.Version
	// HasW indicates WasAvail is meaningful (available copy scheme only).
	HasW     bool
	WasAvail SiteSet
	// ReplaceW makes the receiver replace its stored was-available set
	// with WasAvail (plus itself and the writer) instead of merging. Set
	// only by the immediate-W ablation, where the coordinator knows the
	// exact recipient set.
	ReplaceW bool
}

// Kind implements Request.
func (PutRequest) Kind() string { return "put" }

// PutReply acknowledges a PutRequest.
type PutReply struct{}

// RespKind implements Response.
func (PutReply) RespKind() string { return "put-reply" }

// PrepareWriteRequest is the combined single-round write of the fast
// write path (DESIGN.md §12): it carries the coordinator's proposed
// version *and* the block data in one message, collapsing the Figure 4
// vote round and put fan-out into a single quorum round trip. The
// recipient answers with its vote (exactly the VoteReply fields) and
// provisionally installs the proposal when — and only when — the
// proposed version strictly exceeds its local one, so no site can ever
// hold two different contents under the same version number.
type PrepareWriteRequest struct {
	Block block.Index
	Data  []byte
	// Version is the coordinator's proposal: its local version + 1.
	Version block.Version
}

// Kind implements Request.
func (PrepareWriteRequest) Kind() string { return "prepare-write" }

// PrepareWriteReply is a site's combined vote-and-stage answer.
type PrepareWriteReply struct {
	// Version is the responder's version *before* any install: its vote.
	Version block.Version
	Weight  int64
	State   SiteState
	Witness bool
	// Staged reports that the proposal was installed. Comatose sites and
	// witnesses vote without staging, and a proposal at or below the
	// local version is refused (the coordinator falls back to the
	// two-round path).
	Staged bool
}

// RespKind implements Response.
func (PrepareWriteReply) RespKind() string { return "prepare-write-reply" }

// AbortWriteRequest undoes a staged prepare-write that failed to gather
// a quorum: the recipient restores the pre-image it retained when it
// staged version Version, provided nothing newer has been installed
// since. Without the abort, a failed write would leave data behind that
// a later write's version number could collide with — classic voting's
// failed vote round leaves no trace, and the fast path must match that.
type AbortWriteRequest struct {
	Block block.Index
	// Version is the staged proposal to revert.
	Version block.Version
}

// Kind implements Request.
func (AbortWriteRequest) Kind() string { return "abort-write" }

// AbortWriteReply acknowledges an AbortWriteRequest. An abort of a
// proposal that was never staged, or that a newer install has already
// superseded, succeeds as a no-op.
type AbortWriteReply struct{}

// RespKind implements Response.
func (AbortWriteReply) RespKind() string { return "abort-write-reply" }

// StatusRequest asks a site for its recovery-relevant state. A recovering
// site broadcasts it to learn which sites are up, their states, their
// was-available sets and how current they are (§3.2, §5.1).
type StatusRequest struct{}

// Kind implements Request.
func (StatusRequest) Kind() string { return "status" }

// StatusReply describes the responding site.
type StatusReply struct {
	State SiteState
	// WasAvail is the responder's stored was-available set (AC only).
	WasAvail SiteSet
	// VersionSum is the responder's whole-device currency measure
	// (Figures 5-6 compare sites by version(t)).
	VersionSum uint64
	// Witness marks a voting witness; witnesses cannot serve as repair
	// sources since they hold no data.
	Witness bool
}

// RespKind implements Response.
func (StatusReply) RespKind() string { return "status-reply" }

// RecoveryRequest is the version-vector exchange of Figure 5: the
// recovering site s sends its vector v to the repair source t. The
// request also carries s's identity so that t can fold s into its
// was-available set (send(t, W_s) folded into the same high-level
// exchange; §5.1 counts the whole repair as one request + one response).
type RecoveryRequest struct {
	Vector block.Vector
	// JoinW asks the responder to add the sender to its was-available
	// set (available copy scheme only).
	JoinW bool
	// MaxBlocks, when positive, bounds the number of block copies per
	// reply: the responder returns at most MaxBlocks stale blocks with
	// index >= Cont and sets RecoveryReply.More when further pages
	// remain. Zero keeps the legacy single-shot shape of Figure 5 — the
	// whole stale set in one reply — which the §5 traffic tests pin.
	MaxBlocks int
	// Cont is the continuation token of a paged exchange: the first
	// block index the responder should consider. Zero on the first page.
	Cont block.Index
}

// Kind implements Request.
func (RecoveryRequest) Kind() string { return "recovery" }

// RecoveryReply returns the correct vector v' and copies of every block
// that changed while the requester was down.
type RecoveryReply struct {
	Vector block.Vector
	Blocks []BlockCopy
	// WasAvail is the responder's was-available set after the join, so
	// the recovering site starts from the merged set.
	WasAvail SiteSet
	// More reports that a paged exchange (MaxBlocks > 0) has further
	// stale blocks beyond this reply; the requester continues with
	// Cont = Next. Always false in the legacy single-shot shape.
	More bool
	// Next is the continuation token for the next page when More is set.
	Next block.Index
}

// RespKind implements Response.
func (RecoveryReply) RespKind() string { return "recovery-reply" }

// RepairSummaryRequest asks a site for its repair-relevant summary: the
// anti-entropy repairer (DESIGN.md §13) broadcasts it after readmission
// to discover which peers hold newer block versions. The reply carries
// the full version vector — unlike StatusReply's scalar VersionSum — so
// the repairer can compute the exact stale set without a Figure 5
// exchange per candidate donor.
type RepairSummaryRequest struct{}

// Kind implements Request.
func (RepairSummaryRequest) Kind() string { return "repair-summary" }

// RepairSummaryReply is a site's repair summary.
type RepairSummaryReply struct {
	Vector block.Vector
	State  SiteState
	// Witness marks a site that holds version numbers but no data;
	// witnesses can never serve as repair donors.
	Witness bool
}

// RespKind implements Response.
func (RepairSummaryReply) RespKind() string { return "repair-summary-reply" }

// BlockWant names one block a repairer is missing and the version floor
// that makes a donor's copy useful. A donor whose copy is older than
// MinVersion omits the block rather than ship a stale copy the repairer
// would have to discard.
type BlockWant struct {
	Index      block.Index
	MinVersion block.Version
}

// RepairFetchRequest asks a donor for one page of stale blocks. The
// repairer — not the donor — owns the pagination state: it slices its
// want-list into bounded pages and pipelines several outstanding pages
// per donor, so a donor crash mid-stream loses only the in-flight pages
// and the remainder fails over to the next donor unchanged.
type RepairFetchRequest struct {
	Wants []BlockWant
}

// Kind implements Request.
func (RepairFetchRequest) Kind() string { return "repair-fetch" }

// RepairFetchReply returns the donor's copies of the wanted blocks. A
// block the donor no longer holds at MinVersion or newer is simply
// absent; the repairer re-requests it from a fresher donor.
type RepairFetchReply struct {
	Blocks []BlockCopy
}

// RespKind implements Response.
func (RepairFetchReply) RespKind() string { return "repair-fetch-reply" }

// TelemetryPullRequest asks a site for its metrics registry snapshot:
// the cross-site aggregation plane (DESIGN.md §16) broadcasts it from a
// designated aggregator to build the cluster-wide metrics view. The
// request is deliberately empty — the reply carries everything — so a
// scrape costs one transmission each way, the cheapest exchange the
// transport can price.
type TelemetryPullRequest struct{}

// Kind implements Request.
func (TelemetryPullRequest) Kind() string { return "telemetry-pull" }

// TelemetryPullReply carries the responding site's registry snapshot as
// encoded JSON. The protocol layer cannot name the observability types
// (obs imports protocol), so the snapshot crosses the wire opaque; the
// aggregator decodes it with obs.DecodeSnapshot. A site with no
// telemetry hook installed answers with an empty Snap.
type TelemetryPullReply struct {
	Snap []byte
}

// RespKind implements Response.
func (TelemetryPullReply) RespKind() string { return "telemetry-pull-reply" }

// RegisterGob registers all protocol messages with encoding/gob so that
// rpcnet can ship them as interface values. Safe to call more than once
// only from a single init path; rpcnet calls it exactly once.
func RegisterGob() {
	gob.Register(VoteRequest{})
	gob.Register(VoteReply{})
	gob.Register(FetchRequest{})
	gob.Register(FetchReply{})
	gob.Register(PutRequest{})
	gob.Register(PutReply{})
	gob.Register(PrepareWriteRequest{})
	gob.Register(PrepareWriteReply{})
	gob.Register(AbortWriteRequest{})
	gob.Register(AbortWriteReply{})
	gob.Register(StatusRequest{})
	gob.Register(StatusReply{})
	gob.Register(RecoveryRequest{})
	gob.Register(RecoveryReply{})
	gob.Register(RepairSummaryRequest{})
	gob.Register(RepairSummaryReply{})
	gob.Register(RepairFetchRequest{})
	gob.Register(RepairFetchReply{})
	gob.Register(TelemetryPullRequest{})
	gob.Register(TelemetryPullReply{})
}
