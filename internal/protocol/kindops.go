package protocol

// KindOps maps every request kind to the §5 operation classes whose
// cost formulas cover its traffic. The paper prices three operation
// rows (write, read, recovery; this repo adds the repair row for the
// background anti-entropy stream, DESIGN.md §13), and the conformance
// checker compares the transport's per-op transmission counts against
// those formulas. A request kind missing from this table is traffic
// the model cannot attribute: it inflates the aggregate counters while
// every per-op bracket stays green, which is exactly the silent skew
// the table exists to prevent.
//
// The static side of the contract is enforced by the wirecheck
// analyzer (every Kind() literal must appear here, and every key here
// must name a live request type); the dynamic side by
// obs.UnpricedKinds, which rejects observed traffic whose kind is not
// in the table.
var KindOps = map[string][]string{
	"vote":           {OpWrite, OpRead}, // quorum collection serves both §5 rows
	"fetch":          {OpRead},          // current-copy pull after a read quorum
	"put":            {OpWrite},         // commit push (incl. W-set tightening)
	"prepare-write":  {OpWrite},         // two-round stage
	"abort-write":    {OpWrite},         // two-round rollback
	"status":         {OpRecovery},      // readmission probe
	"recovery":       {OpRecovery},      // readmission state/block transfer
	"repair-summary": {OpRepair},        // anti-entropy digest exchange
	"repair-fetch":   {OpRepair},        // anti-entropy paged block pull
	"telemetry-pull": {OpTelemetry},     // aggregation-plane registry scrape
}

// PricedKind reports whether the request kind is covered by the §5
// pricing table.
func PricedKind(kind string) bool {
	_, ok := KindOps[kind]
	return ok
}

// OpsForKind returns the §5 operation classes that price the request
// kind, or nil for an unpriced kind.
func OpsForKind(kind string) []string {
	return KindOps[kind]
}
