package protocol

// WireSize estimates the payload size in bytes of a protocol message on
// the wire, used by simnet's byte-level traffic accounting. §5 notes
// that accounting by message *size* instead of message *count* yields
// similar, slightly less pronounced differences between the schemes —
// block transfers dominate and every scheme ships roughly the same
// blocks; the byte counters let experiments verify that claim.
//
// Sizes are the natural fixed-width encodings plus an 8-byte header per
// message; exact framing constants do not matter for the comparisons.
const wireHeader = 8

// WireSize returns the estimated size of req or resp in bytes. Unknown
// message types count as a bare header.
func WireSize(msg interface{}) int {
	switch m := msg.(type) {
	case VoteRequest:
		return wireHeader + 4
	case VoteReply:
		return wireHeader + 8 + 8 + 1 + 1
	case FetchRequest:
		return wireHeader + 4
	case FetchReply:
		return wireHeader + 8 + len(m.Data)
	case PutRequest:
		return wireHeader + 4 + 8 + 8 + 2 + len(m.Data)
	case PutReply:
		return wireHeader
	case PrepareWriteRequest:
		return wireHeader + 4 + 8 + len(m.Data)
	case PrepareWriteReply:
		return wireHeader + 8 + 8 + 1 + 1 + 1
	case AbortWriteRequest:
		return wireHeader + 4 + 8
	case AbortWriteReply:
		return wireHeader
	case StatusRequest:
		return wireHeader
	case StatusReply:
		return wireHeader + 8 + 8 + 1 + 1
	case RecoveryRequest:
		return wireHeader + 1 + 8*len(m.Vector) + 4 + 4
	case RecoveryReply:
		size := wireHeader + 8 + 1 + 4 + 8*len(m.Vector)
		for _, b := range m.Blocks {
			size += 12 + len(b.Data)
		}
		return size
	case RepairSummaryRequest:
		return wireHeader
	case RepairSummaryReply:
		return wireHeader + 1 + 1 + 8*len(m.Vector)
	case RepairFetchRequest:
		return wireHeader + 12*len(m.Wants)
	case RepairFetchReply:
		size := wireHeader
		for _, b := range m.Blocks {
			size += 12 + len(b.Data)
		}
		return size
	case TelemetryPullRequest:
		return wireHeader
	case TelemetryPullReply:
		return wireHeader + len(m.Snap)
	default:
		return wireHeader
	}
}
