package protocol

import (
	"testing"
	"testing/quick"

	"relidev/internal/block"
)

func TestSiteSetBasics(t *testing.T) {
	s := NewSiteSet(0, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, id := range []SiteID{0, 3, 5} {
		if !s.Has(id) {
			t.Fatalf("missing member %v", id)
		}
	}
	if s.Has(1) || s.Has(63) {
		t.Fatal("spurious member")
	}
	s = s.Remove(3)
	if s.Has(3) || s.Len() != 2 {
		t.Fatalf("after Remove: %v", s)
	}
	if got := s.String(); got != "{0,5}" {
		t.Fatalf("String = %q", got)
	}
}

func TestSiteSetOutOfRangeIgnored(t *testing.T) {
	var s SiteSet
	s = s.Add(-1).Add(MaxSites).Add(MaxSites + 10)
	if !s.Empty() {
		t.Fatalf("out-of-range Add changed set: %v", s)
	}
	if s.Has(-1) || s.Has(MaxSites) {
		t.Fatal("Has accepted out-of-range id")
	}
	s = NewSiteSet(2).Remove(-5).Remove(MaxSites)
	if s != NewSiteSet(2) {
		t.Fatal("out-of-range Remove changed set")
	}
}

func TestFullSet(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{n: 0, want: 0},
		{n: -2, want: 0},
		{n: 1, want: 1},
		{n: 5, want: 5},
		{n: MaxSites, want: MaxSites},
		{n: MaxSites + 7, want: MaxSites},
	}
	for _, tt := range tests {
		s := FullSet(tt.n)
		if s.Len() != tt.want {
			t.Fatalf("FullSet(%d).Len = %d, want %d", tt.n, s.Len(), tt.want)
		}
		for i := 0; i < tt.want; i++ {
			if !s.Has(SiteID(i)) {
				t.Fatalf("FullSet(%d) missing %d", tt.n, i)
			}
		}
	}
}

func TestSiteSetAlgebra(t *testing.T) {
	a := NewSiteSet(1, 2, 3)
	b := NewSiteSet(3, 4)
	if got := a.Union(b); got != NewSiteSet(1, 2, 3, 4) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewSiteSet(3) {
		t.Fatalf("Intersect = %v", got)
	}
	if !NewSiteSet(1, 3).SubsetOf(a) {
		t.Fatal("SubsetOf false negative")
	}
	if b.SubsetOf(a) {
		t.Fatal("SubsetOf false positive")
	}
}

func TestSiteSetMembersRoundtrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := SiteSet(raw)
		back := NewSiteSet(s.Members()...)
		return back == s && s.Len() == len(s.Members())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is the least upper bound — both operands are subsets,
// and any superset of both contains the union.
func TestSiteSetUnionProperties(t *testing.T) {
	f := func(a, b, c uint64) bool {
		sa, sb, sc := SiteSet(a), SiteSet(b), SiteSet(c)
		u := sa.Union(sb)
		if !sa.SubsetOf(u) || !sb.SubsetOf(u) {
			return false
		}
		if sa.SubsetOf(sc) && sb.SubsetOf(sc) && !u.SubsetOf(sc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSiteStateString(t *testing.T) {
	tests := []struct {
		s    SiteState
		want string
	}{
		{StateFailed, "failed"},
		{StateComatose, "comatose"},
		{StateAvailable, "available"},
		{SiteState(0), "invalid(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Fatalf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestMessageKinds(t *testing.T) {
	reqs := []Request{
		VoteRequest{}, FetchRequest{}, PutRequest{}, StatusRequest{}, RecoveryRequest{},
	}
	seen := make(map[string]bool)
	for _, r := range reqs {
		k := r.Kind()
		if k == "" || seen[k] {
			t.Fatalf("request kind %q empty or duplicated", k)
		}
		seen[k] = true
	}
	resps := []Response{
		VoteReply{}, FetchReply{}, PutReply{}, StatusReply{}, RecoveryReply{},
	}
	for _, r := range resps {
		if r.RespKind() == "" {
			t.Fatalf("%T has empty RespKind", r)
		}
	}
}

func TestSiteIDString(t *testing.T) {
	if got := SiteID(4).String(); got != "site4" {
		t.Fatalf("String = %q", got)
	}
}

func TestRegisterGobIdempotent(t *testing.T) {
	// Registering twice must not panic (gob.Register panics on
	// conflicting duplicates; identical re-registration is permitted).
	RegisterGob()
	RegisterGob()
}

func TestWireSizeCoversEveryMessage(t *testing.T) {
	msgs := []interface{}{
		VoteRequest{}, VoteReply{}, FetchRequest{},
		FetchReply{Data: make([]byte, 10)},
		PutRequest{Data: make([]byte, 20)}, PutReply{},
		StatusRequest{}, StatusReply{},
		RecoveryRequest{Vector: make(block.Vector, 3)},
		RecoveryReply{Vector: make(block.Vector, 3), Blocks: []BlockCopy{{Data: make([]byte, 5)}}},
		RepairSummaryRequest{}, RepairSummaryReply{Vector: make(block.Vector, 3)},
		RepairFetchRequest{Wants: []BlockWant{{Index: 1, MinVersion: 2}}},
		RepairFetchReply{Blocks: []BlockCopy{{Data: make([]byte, 5)}}},
		TelemetryPullRequest{}, TelemetryPullReply{Snap: make([]byte, 7)},
	}
	for _, m := range msgs {
		if s := WireSize(m); s < 8 {
			t.Fatalf("%T wire size %d below header", m, s)
		}
	}
	// Payload-carrying messages dominate fixed-size ones.
	if WireSize(PutRequest{Data: make([]byte, 4096)}) <= WireSize(VoteRequest{}) {
		t.Fatal("put smaller than vote")
	}
	if WireSize(struct{ X int }{}) != 8 {
		t.Fatal("unknown type should cost exactly one header")
	}
}

func TestKindOpsCoversEveryRequest(t *testing.T) {
	reqs := []Request{
		VoteRequest{}, FetchRequest{}, PutRequest{}, PrepareWriteRequest{},
		AbortWriteRequest{}, StatusRequest{}, RecoveryRequest{},
		RepairSummaryRequest{}, RepairFetchRequest{}, TelemetryPullRequest{},
	}
	validOps := map[string]bool{OpWrite: true, OpRead: true, OpRecovery: true, OpRepair: true, OpTelemetry: true}
	kinds := make(map[string]bool, len(reqs))
	for _, r := range reqs {
		k := r.Kind()
		kinds[k] = true
		if !PricedKind(k) {
			t.Errorf("request kind %q (%T) missing from KindOps: its traffic is invisible to the §5 pricing tables", k, r)
			continue
		}
		ops := OpsForKind(k)
		if len(ops) == 0 {
			t.Errorf("KindOps[%q] prices no op classes", k)
		}
		for _, op := range ops {
			if !validOps[op] {
				t.Errorf("KindOps[%q] names unknown op class %q", k, op)
			}
		}
	}
	// The reverse direction: no stale pricing entries.
	for k := range KindOps {
		if !kinds[k] {
			t.Errorf("KindOps prices kind %q but no request type declares it", k)
		}
	}
	if PricedKind("no-such-kind") {
		t.Error("PricedKind should reject unknown kinds")
	}
	if OpsForKind("no-such-kind") != nil {
		t.Error("OpsForKind should return nil for unknown kinds")
	}
}

func TestBlockCopyString(t *testing.T) {
	c := BlockCopy{Index: 4, Data: []byte{1, 2}, Version: 9}
	if got := c.String(); got != "blk4@v9(2B)" {
		t.Fatalf("String = %q", got)
	}
}
