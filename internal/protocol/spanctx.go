package protocol

import "context"

// A SpanContext identifies one node of a distributed trace. The
// observability layer opens a root span per device operation, the
// metering transport opens a child span per remote call, and the wire
// layer (rpcnet) carries the context inside every request so the
// remote site's handler span is causally linked to the caller's. The
// design follows Dapper: a trace is a tree of spans sharing TraceID,
// each span naming its parent.
type SpanContext struct {
	// TraceID names the whole operation tree; the root span's SpanID
	// doubles as the TraceID.
	TraceID uint64
	// SpanID names this node. IDs embed the originating site in the top
	// bits so concurrently-allocating sites never collide.
	SpanID uint64
}

// Valid reports whether the context names a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

type spanCtxKey struct{}

// WithSpan attaches a trace span context to ctx. Transport decorators
// and the wire layer propagate it alongside the WithOp label.
func WithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// CtxSpan returns the span context attached by WithSpan; the zero
// SpanContext (Valid() == false) means the caller is untraced.
func CtxSpan(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}
