package naiveac

import (
	"context"
	"errors"
	"testing"

	"relidev/internal/block"
	"relidev/internal/protocol"
	"relidev/internal/scheme"
	"relidev/internal/simnet"
	"relidev/internal/site"
	"relidev/internal/store"
)

var testGeom = block.Geometry{BlockSize: 16, NumBlocks: 4}

type rig struct {
	net      *simnet.Network
	replicas []*site.Replica
	ctrls    []*Controller
}

func newRig(t *testing.T, n int, mode simnet.Mode) *rig {
	t.Helper()
	r := &rig{net: simnet.New(mode)}
	ids := make([]protocol.SiteID, n)
	for i := 0; i < n; i++ {
		ids[i] = protocol.SiteID(i)
	}
	for i := 0; i < n; i++ {
		st, err := store.NewMem(testGeom)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := site.New(site.Config{ID: ids[i], Store: st})
		if err != nil {
			t.Fatal(err)
		}
		r.replicas = append(r.replicas, rep)
		r.net.Attach(ids[i], rep)
	}
	for i := 0; i < n; i++ {
		ctrl, err := New(scheme.Env{Self: r.replicas[i], Transport: r.net, Sites: ids})
		if err != nil {
			t.Fatal(err)
		}
		r.ctrls = append(r.ctrls, ctrl)
	}
	return r
}

func (r *rig) fail(id protocol.SiteID) {
	r.replicas[id].SetState(protocol.StateFailed)
	r.net.SetUp(id, false)
}

func (r *rig) restart(id protocol.SiteID) {
	r.replicas[id].SetState(protocol.StateComatose)
	r.net.SetUp(id, true)
}

func (r *rig) driveRecovery(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for {
		progress := false
		for i, rep := range r.replicas {
			if rep.State() != protocol.StateComatose {
				continue
			}
			err := r.ctrls[i].Recover(ctx)
			switch {
			case err == nil:
				progress = true
			case errors.Is(err, scheme.ErrAwaitingSites):
			default:
				t.Fatalf("recovery of site %d: %v", i, err)
			}
		}
		if !progress {
			return
		}
	}
}

func pad(s string) []byte {
	out := make([]byte, testGeom.BlockSize)
	copy(out, s)
	return out
}

func TestReadWriteRoundtrip(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 1, pad("naive")); err != nil {
		t.Fatal(err)
	}
	for i, c := range r.ctrls {
		got, err := c.Read(ctx, 1)
		if err != nil || string(got[:5]) != "naive" {
			t.Fatalf("read at %d = %q, %v", i, got[:5], err)
		}
	}
}

func TestWriteIsOneMulticastMessage(t *testing.T) {
	// §5.1: "the naive available copy scheme need only broadcast one
	// message when a write is performed".
	r := newRig(t, 6, simnet.Multicast)
	ctx := context.Background()
	r.net.ResetStats()
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().Transmissions; got != 1 {
		t.Fatalf("write traffic = %d, want 1", got)
	}
}

func TestWriteIsNMinusOneUnicastMessages(t *testing.T) {
	// §5.2: n-1 individually addressed messages, regardless of who is up.
	n := 5
	r := newRig(t, n, simnet.Unicast)
	ctx := context.Background()
	r.fail(3)
	r.net.ResetStats()
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().Transmissions; got != uint64(n-1) {
		t.Fatalf("write traffic = %d, want %d", got, n-1)
	}
}

func TestReadIsFree(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	r.net.ResetStats()
	if _, err := r.ctrls[1].Read(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if st := r.net.Stats(); st.Transmissions != 0 {
		t.Fatalf("read cost %d transmissions", st.Transmissions)
	}
}

func TestSurvivesAllButOneFailure(t *testing.T) {
	r := newRig(t, 4, simnet.Multicast)
	ctx := context.Background()
	r.fail(0)
	r.fail(1)
	r.fail(2)
	if err := r.ctrls[3].Write(ctx, 2, pad("last")); err != nil {
		t.Fatalf("write on last copy: %v", err)
	}
	got, err := r.ctrls[3].Read(ctx, 2)
	if err != nil || string(got[:4]) != "last" {
		t.Fatalf("read = %q, %v", got[:4], err)
	}
}

func TestRecoveryFromAvailableSite(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	r.fail(1)
	if err := r.ctrls[0].Write(ctx, 0, pad("newer")); err != nil {
		t.Fatal(err)
	}
	r.restart(1)
	r.driveRecovery(t)
	if st := r.replicas[1].State(); st != protocol.StateAvailable {
		t.Fatalf("state = %v", st)
	}
	got, err := r.ctrls[1].Read(ctx, 0)
	if err != nil || string(got[:5]) != "newer" {
		t.Fatalf("read = %q, %v", got[:5], err)
	}
}

func TestTotalFailureWaitsForAllSites(t *testing.T) {
	// Figure 6 / §4.3: after a total failure the naive scheme waits until
	// *all* copies have recovered — even sites that failed long before
	// the last write cannot unblock recovery.
	r := newRig(t, 4, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("w1")); err != nil {
		t.Fatal(err)
	}
	r.fail(3)
	if err := r.ctrls[0].Write(ctx, 0, pad("w2")); err != nil {
		t.Fatal(err)
	}
	r.fail(0)
	r.fail(1)
	r.fail(2) // total failure; site 2 was among the last up

	// Three of four restart — including every site that held w2 — but
	// the naive scheme still waits for site 3.
	r.restart(0)
	r.restart(1)
	r.restart(2)
	r.driveRecovery(t)
	for i := 0; i <= 2; i++ {
		if st := r.replicas[i].State(); st != protocol.StateComatose {
			t.Fatalf("site %d state = %v, want comatose (naive waits for all)", i, st)
		}
	}
	if _, err := r.ctrls[2].Read(ctx, 0); !errors.Is(err, scheme.ErrNotAvailable) {
		t.Fatalf("read during wait = %v, want ErrNotAvailable", err)
	}

	r.restart(3)
	r.driveRecovery(t)
	for i, rep := range r.replicas {
		if st := rep.State(); st != protocol.StateAvailable {
			t.Fatalf("site %d state = %v after all recovered", i, st)
		}
	}
	// The highest-version copy won: w2, not the stale w1 on site 3.
	for i, c := range r.ctrls {
		got, err := c.Read(ctx, 0)
		if err != nil || string(got[:2]) != "w2" {
			t.Fatalf("read at %d = %q, %v; want w2", i, got[:2], err)
		}
	}
}

func TestRecoveryTrafficMulticast(t *testing.T) {
	// §5.1: recovery = U + 2, same shape as available copy.
	n := 4
	r := newRig(t, n, simnet.Multicast)
	ctx := context.Background()
	r.fail(3)
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	r.restart(3)
	r.net.ResetStats()
	if err := r.ctrls[3].Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().Transmissions; got != uint64(n+2) {
		t.Fatalf("recovery traffic = %d, want %d", got, n+2)
	}
}

func TestRecoverAtAvailableSiteIsNoop(t *testing.T) {
	r := newRig(t, 2, simnet.Multicast)
	r.net.ResetStats()
	if err := r.ctrls[0].Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := r.net.Stats(); st.Transmissions != 0 {
		t.Fatalf("no-op recover cost %d transmissions", st.Transmissions)
	}
}

func TestComatoseRejectsNaiveWrites(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	r.fail(2)
	r.restart(2) // comatose
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatalf("write with comatose peer: %v", err)
	}
	if ver, _ := r.replicas[2].VersionLocal(0); ver != 0 {
		t.Fatalf("comatose site absorbed a naive write (version %v)", ver)
	}
}

func TestSingleSiteCluster(t *testing.T) {
	r := newRig(t, 1, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("solo")); err != nil {
		t.Fatal(err)
	}
	r.fail(0)
	r.restart(0)
	r.driveRecovery(t)
	got, err := r.ctrls[0].Read(ctx, 0)
	if err != nil || string(got[:4]) != "solo" {
		t.Fatalf("read = %q, %v", got[:4], err)
	}
}

func TestName(t *testing.T) {
	r := newRig(t, 1, simnet.Multicast)
	if r.ctrls[0].Name() != "naive" {
		t.Fatalf("Name = %q", r.ctrls[0].Name())
	}
}
