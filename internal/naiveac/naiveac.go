// Package naiveac implements the naive available copy consistency scheme
// of §3.3 — the paper's algorithm of choice.
//
// It behaves like the available copy scheme with the was-available sets
// frozen at W_s = S: no failure bookkeeping is kept at all. Writes are a
// single broadcast (the reliable delivery assumption covers the
// acknowledgements), reads are local, and after a total failure the
// recovery procedure of Figure 6 waits until *every* site has recovered,
// then adopts the copy with the highest version.
package naiveac

import (
	"context"
	"fmt"

	"relidev/internal/block"
	"relidev/internal/obs"
	"relidev/internal/protocol"
	"relidev/internal/scheme"
)

// Controller is the naive available copy engine at one site.
type Controller struct {
	env scheme.Env

	// locks serialises same-block operations while letting distinct
	// blocks proceed concurrently; recovery excludes all in-flight
	// operations.
	locks scheme.OpLocks
}

var _ scheme.Controller = (*Controller)(nil)

// New builds a naive available copy controller.
func New(env scheme.Env) (*Controller, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return &Controller{env: env}, nil
}

// Name implements scheme.Controller.
func (c *Controller) Name() string { return "naive" }

// Read serves the block locally, exactly as the available copy scheme
// does: zero network traffic.
func (c *Controller) Read(ctx context.Context, idx block.Index) (_ []byte, err error) {
	ob := c.env.Obs
	lockT0 := ob.Now()
	c.locks.LockOp(idx)
	defer c.locks.UnlockOp(idx)
	lockWait := ob.Now() - lockT0
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.env.Self.State() != protocol.StateAvailable {
		return nil, fmt.Errorf("naive read of %v at %v (%v): %w",
			idx, c.env.Self.ID(), c.env.Self.State(), scheme.ErrNotAvailable)
	}
	// The span opens past the availability gate so attempt counts match
	// the §5 accounting (a refused operation generates no traffic).
	_, sp := ob.StartOp(ctx, protocol.OpRead, int64(idx))
	sp.AddLockWait(lockWait)
	defer func() { sp.Done(1, err) }()
	data, _, err := c.env.Self.ReadLocal(idx)
	if err != nil {
		return nil, fmt.Errorf("naive read of %v: %w", idx, err)
	}
	return data, nil
}

// Write broadcasts the block to all sites with no acknowledgement
// traffic: one high-level transmission in a multi-cast network, n-1 with
// unique addressing (§5). Because no was-available information is
// maintained, nothing is piggybacked.
func (c *Controller) Write(ctx context.Context, idx block.Index, data []byte) (err error) {
	ob := c.env.Obs
	lockT0 := ob.Now()
	c.locks.LockOp(idx)
	defer c.locks.UnlockOp(idx)
	lockWait := ob.Now() - lockT0
	self := c.env.Self
	if self.State() != protocol.StateAvailable {
		return fmt.Errorf("naive write of %v at %v (%v): %w",
			idx, self.ID(), self.State(), scheme.ErrNotAvailable)
	}
	ctx = ob.Label(ctx, protocol.OpWrite)
	ctx, sp := ob.StartOp(ctx, protocol.OpWrite, int64(idx))
	sp.AddLockWait(lockWait)
	defer func() { sp.Done(1, err) }()
	localVer, err := self.VersionLocal(idx)
	if err != nil {
		return fmt.Errorf("naive write of %v: %w", idx, err)
	}
	newVer := localVer + 1
	put := protocol.PutRequest{Block: idx, Data: data, Version: newVer}
	// Fire-and-forget: failed sites miss the write and repair later;
	// comatose sites reject it (they must not mix old and new blocks).
	//relidev:allow transport: §3.3's naive scheme assumes reliable delivery to available sites; per-site outcomes are intentionally not observed
	c.env.Transport.Notify(ctx, self.ID(), c.env.Remotes(), put)
	if err := self.WriteLocal(idx, data, newVer); err != nil {
		return fmt.Errorf("naive write of %v: %w", idx, err)
	}
	return nil
}

// Recover implements Figure 6: if some site is available, repair from it;
// otherwise wait until every site has recovered and repair from (or
// become) the one with the highest version.
func (c *Controller) Recover(ctx context.Context) (err error) {
	ob := c.env.Obs
	lockT0 := ob.Now()
	c.locks.LockRecovery()
	defer c.locks.UnlockRecovery()
	lockWait := ob.Now() - lockT0
	self := c.env.Self
	if self.State() == protocol.StateAvailable {
		return nil
	}
	self.SetState(protocol.StateComatose)
	ctx = ob.Label(ctx, protocol.OpRecovery)
	ctx, sp := ob.StartOp(ctx, protocol.OpRecovery, obs.NoBlock)
	sp.AddLockWait(lockWait)
	participants := 0
	defer func() { sp.Done(participants, err) }()

	results := c.env.Transport.Broadcast(ctx, self.ID(), c.env.Remotes(), protocol.StatusRequest{})

	type status struct {
		state protocol.SiteState
		sum   uint64
	}
	states := map[protocol.SiteID]status{
		self.ID(): {state: protocol.StateComatose, sum: self.VersionSum()},
	}
	for id, res := range results {
		if res.Err != nil {
			continue
		}
		st, ok := res.Resp.(protocol.StatusReply)
		if !ok {
			return fmt.Errorf("naive recovery: site %v answered %T", id, res.Resp)
		}
		states[id] = status{state: st.State, sum: st.VersionSum}
	}
	// Participation = status responders plus the recovering site itself.
	participants = len(states)

	// Case 1: ∃u ∈ S: state(u) = available.
	var best protocol.SiteID = -1
	var bestSum uint64
	for id, st := range states {
		if st.state != protocol.StateAvailable {
			continue
		}
		if best == -1 || st.sum > bestSum || (st.sum == bestSum && id < best) {
			best, bestSum = id, st.sum
		}
	}
	if best != -1 {
		return c.repairFrom(ctx, best)
	}

	// Case 2: all sites have recovered — pick the most current copy.
	if len(states) < len(c.env.Sites) {
		return fmt.Errorf("naive recovery at %v: %d of %d sites recovered: %w",
			self.ID(), len(states), len(c.env.Sites), scheme.ErrAwaitingSites)
	}
	best, bestSum = -1, 0
	for _, id := range c.env.Sites { // deterministic order
		st := states[id]
		if best == -1 || st.sum > bestSum {
			best, bestSum = id, st.sum
		}
	}
	if best == self.ID() {
		self.SetState(protocol.StateAvailable)
		return nil
	}
	return c.repairFrom(ctx, best)
}

// repairFrom runs the version-vector exchange of Figure 6 against t. No
// was-available set is involved (JoinW false).
func (c *Controller) repairFrom(ctx context.Context, t protocol.SiteID) error {
	self := c.env.Self
	req := protocol.RecoveryRequest{Vector: self.Vector()}
	resp, err := c.env.Transport.Call(ctx, self.ID(), t, req)
	if err != nil {
		if scheme.IsTransportError(err) {
			// The repair source vanished between the status exchange and
			// the version-vector exchange; wait for the next membership
			// change instead of failing the recovery driver.
			return fmt.Errorf("naive recovery of %v from %v: %v: %w", self.ID(), t, err, scheme.ErrAwaitingSites)
		}
		return fmt.Errorf("naive recovery of %v from %v: %w", self.ID(), t, err)
	}
	rec, ok := resp.(protocol.RecoveryReply)
	if !ok {
		return fmt.Errorf("naive recovery: unexpected reply %T", resp)
	}
	if err := self.ApplyRecovery(rec); err != nil {
		return err
	}
	self.SetState(protocol.StateAvailable)
	return nil
}
