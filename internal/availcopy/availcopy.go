// Package availcopy implements the available copy consistency scheme of
// §3.2, adapted for block-level replication.
//
// The write rule is "write to all available copies"; reads are served
// from the local copy with no network traffic at all. Each site keeps a
// *was-available set* W_s — the sites that received the most recent write
// plus the sites that repaired from s — on stable storage. After a total
// failure, a block becomes accessible again once every site in the
// closure C*(W_s) has recovered: the closure is guaranteed to contain the
// site(s) that failed last, and therefore a copy with the most recent
// version (Figure 5).
//
// Following §3.2's relaxation of the atomic broadcast assumption, the
// was-available information piggybacks on write messages and may be one
// write out of date. Recipients therefore *merge* the piggybacked set
// into their stored set rather than replacing it: the stored set stays a
// superset of every site that may hold newer data, which keeps recovery
// safe (it can only wait for more sites than strictly necessary, never
// fewer). The coordinator of a write, which observes the acknowledgement
// set exactly, resets its own W to the true recipient set — W sets shrink
// again whenever a site coordinates a write. The WithImmediateW option
// instead pushes the exact recipient set to all recipients with one extra
// message whenever it changed (DESIGN.md ablation).
package availcopy

import (
	"context"
	"errors"
	"fmt"

	"relidev/internal/block"
	"relidev/internal/obs"
	"relidev/internal/protocol"
	"relidev/internal/scheme"
	"relidev/internal/site"
)

// Option customises a Controller.
type Option func(*Controller)

// WithImmediateW makes the coordinator propagate the exact recipient set
// of a write to all recipients with a dedicated message whenever it
// differs from the piggybacked (one-write-stale) set. Tightens W at the
// cost of one extra transmission per membership change.
func WithImmediateW() Option {
	return func(c *Controller) { c.immediateW = true }
}

// WithPagedRecovery bounds the Figure 5 repair exchange to maxBlocks
// block copies per reply, continued under a resume token, instead of
// the paper's single unbounded reply — the shape a real network needs
// once devices hold millions of blocks. Each page costs one extra
// request/response pair, so the §5 traffic tests that pin the Figure 5
// recovery cost keep the default single-shot shape. maxBlocks <= 0
// leaves paging off.
func WithPagedRecovery(maxBlocks int) Option {
	return func(c *Controller) { c.recoveryPage = maxBlocks }
}

// Controller is the available copy engine at one site.
type Controller struct {
	env          scheme.Env
	immediateW   bool
	recoveryPage int

	// locks serialises same-block operations while letting distinct
	// blocks proceed concurrently; recovery excludes all in-flight
	// operations (see voting.Controller for the concurrency scope the
	// paper assumes). The site-wide was-available set stays safe under
	// concurrent writes because every recipient set a coordinator installs
	// contains the coordinator itself, which holds the newest version of
	// every block it wrote — whichever concurrent reset lands last, the
	// closure still reaches a site with current data.
	locks scheme.OpLocks
}

var _ scheme.Controller = (*Controller)(nil)

// New builds an available copy controller. A fresh, consistent replica
// set starts with W_s = S everywhere (every site holds the freshly
// formatted — hence identical — state).
func New(env scheme.Env, opts ...Option) (*Controller, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{env: env}
	for _, opt := range opts {
		opt(c)
	}
	if c.env.Self.WasAvailable().Empty() {
		//relidev:allow locking: constructor runs single-threaded before the controller escapes; there is no concurrent operation to exclude yet
		if err := c.env.Self.SetWasAvailable(env.FullSet()); err != nil {
			return nil, fmt.Errorf("available copy: initialise was-available set: %w", err)
		}
	}
	return c, nil
}

// Name implements scheme.Controller.
func (c *Controller) Name() string { return "available-copy" }

// Read serves the block from the local copy: every available site holds
// the most recent version of every block, so reads cost no messages.
func (c *Controller) Read(ctx context.Context, idx block.Index) (_ []byte, err error) {
	ob := c.env.Obs
	lockT0 := ob.Now()
	c.locks.LockOp(idx)
	defer c.locks.UnlockOp(idx)
	lockWait := ob.Now() - lockT0
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.env.Self.State() != protocol.StateAvailable {
		return nil, fmt.Errorf("available copy read of %v at %v (%v): %w",
			idx, c.env.Self.ID(), c.env.Self.State(), scheme.ErrNotAvailable)
	}
	// The span opens past the availability gate so attempt counts match
	// the §5 accounting (a refused operation generates no traffic).
	_, sp := ob.StartOp(ctx, protocol.OpRead, int64(idx))
	sp.AddLockWait(lockWait)
	defer func() { sp.Done(1, err) }()
	data, _, err := c.env.Self.ReadLocal(idx)
	if err != nil {
		return nil, fmt.Errorf("available copy read of %v: %w", idx, err)
	}
	return data, nil
}

// Write implements the available copy write rule: broadcast the new block
// to all sites; the available ones install it and acknowledge. The
// piggybacked was-available set describes the previous write (the §3.2
// delayed-information scheme); the coordinator then learns the exact
// recipient set from the acknowledgements and resets its own W to it.
func (c *Controller) Write(ctx context.Context, idx block.Index, data []byte) (err error) {
	ob := c.env.Obs
	lockT0 := ob.Now()
	c.locks.LockOp(idx)
	defer c.locks.UnlockOp(idx)
	lockWait := ob.Now() - lockT0
	self := c.env.Self
	if self.State() != protocol.StateAvailable {
		return fmt.Errorf("available copy write of %v at %v (%v): %w",
			idx, self.ID(), self.State(), scheme.ErrNotAvailable)
	}
	ctx = ob.Label(ctx, protocol.OpWrite)
	ctx, sp := ob.StartOp(ctx, protocol.OpWrite, int64(idx))
	sp.AddLockWait(lockWait)
	participants := 0
	defer func() { sp.Done(participants, err) }()
	localVer, err := self.VersionLocal(idx)
	if err != nil {
		return fmt.Errorf("available copy write of %v: %w", idx, err)
	}
	newVer := localVer + 1

	put := protocol.PutRequest{
		Block:   idx,
		Data:    data,
		Version: newVer,
		HasW:    true,
		// One write out of date by design: the set the *previous* write
		// established.
		WasAvail: self.WasAvailable(),
	}
	results := c.env.Transport.Broadcast(ctx, self.ID(), c.env.Remotes(), put)

	recipients := protocol.NewSiteSet(self.ID())
	for id, res := range results {
		switch {
		case res.Err == nil:
			recipients = recipients.Add(id)
		case errors.Is(res.Err, protocol.ErrTransient):
			// A transient wire failure against a peer *not* known to be
			// down must fail the whole write rather than silently drop
			// the peer: excluding a live site from the recipient set
			// would shrink W_s below the set of sites holding the most
			// recent write, and a later recovery could then adopt a
			// stale copy. The caller retries; W_s is left untouched.
			return fmt.Errorf("available copy write of %v: outcome at site %v indeterminate: %w", idx, id, res.Err)
		case errors.Is(res.Err, protocol.ErrSiteDown),
			errors.Is(res.Err, protocol.ErrSiteUnreachable),
			errors.Is(res.Err, site.ErrComatose),
			errors.Is(res.Err, site.ErrNotOperational):
			// Failed or not-yet-recovered sites simply miss the write;
			// they will repair when they come back.
		default:
			return fmt.Errorf("available copy write of %v at site %v: %w", idx, id, res.Err)
		}
	}
	if err := self.WriteLocal(idx, data, newVer); err != nil {
		return fmt.Errorf("available copy write of %v: %w", idx, err)
	}
	participants = recipients.Len()
	// The coordinator knows the recipient set exactly: W_s = sites that
	// received the most recent write.
	if err := self.SetWasAvailable(recipients); err != nil {
		return err
	}
	if c.immediateW && !put.WasAvail.SubsetOf(recipients) {
		// Ablation: push the exact set so recipients do not carry the
		// stale superset until the next write.
		fix := protocol.PutRequest{
			Block: idx, Data: data, Version: newVer,
			HasW: true, WasAvail: recipients, ReplaceW: true,
		}
		//relidev:allow transport: best-effort W-set tightening; a lost fix leaves recipients with a stale *superset*, which the merge rules keep safe until the next write
		c.env.Transport.Notify(ctx, self.ID(), recipients.Remove(self.ID()).Members(), fix)
	}
	return nil
}

// status is one site's answer to the recovery broadcast.
type status struct {
	state    protocol.SiteState
	wasAvail protocol.SiteSet
	sum      uint64
}

// Recover implements Figure 5. The local site is comatose. It broadcasts
// a status query; then either
//
//   - some site is available: repair from it immediately, or
//   - every site in the closure C*(W_s) has recovered (is comatose or
//     available): the most current of them is known to hold the most
//     recent versions; repair from it (or, if that is the local site
//     itself, just become available), or
//   - otherwise: recovery must wait (ErrAwaitingSites).
func (c *Controller) Recover(ctx context.Context) (err error) {
	ob := c.env.Obs
	lockT0 := ob.Now()
	c.locks.LockRecovery()
	defer c.locks.UnlockRecovery()
	lockWait := ob.Now() - lockT0
	self := c.env.Self
	if self.State() == protocol.StateAvailable {
		return nil
	}
	self.SetState(protocol.StateComatose)
	ctx = ob.Label(ctx, protocol.OpRecovery)
	ctx, sp := ob.StartOp(ctx, protocol.OpRecovery, obs.NoBlock)
	sp.AddLockWait(lockWait)
	participants := 0
	defer func() { sp.Done(participants, err) }()

	results := c.env.Transport.Broadcast(ctx, self.ID(), c.env.Remotes(), protocol.StatusRequest{})
	states := map[protocol.SiteID]status{
		self.ID(): {state: protocol.StateComatose, wasAvail: self.WasAvailable(), sum: self.VersionSum()},
	}
	for id, res := range results {
		if res.Err != nil {
			continue
		}
		st, ok := res.Resp.(protocol.StatusReply)
		if !ok {
			return fmt.Errorf("available copy recovery: site %v answered %T", id, res.Resp)
		}
		states[id] = status{state: st.State, wasAvail: st.WasAvail, sum: st.VersionSum}
	}
	// Participation = status responders plus the recovering site itself.
	participants = len(states)

	// Case 1: when ∃u ∈ S: state(u) = available, repair from any such u.
	if t, ok := pickAvailable(states); ok {
		return c.repairFrom(ctx, t)
	}

	// Case 2: when all sites in C*(W_s) have recovered, repair from the
	// most current member.
	root := self.WasAvailable().Add(self.ID())
	closure := Closure(root, func(u protocol.SiteID) (protocol.SiteSet, bool) {
		st, ok := states[u]
		return st.wasAvail, ok
	})
	allRecovered := true
	for _, u := range closure.Members() {
		if _, ok := states[u]; !ok {
			allRecovered = false
			break
		}
	}
	ob.ClosureRecomputed(root, closure, allRecovered)
	if allRecovered {
		t := mostCurrent(states, closure)
		if t == self.ID() {
			// The local copy is the most recent: "let t: ∀u, version(t) >=
			// version(u)" picks s itself; no transfer needed and, per
			// Figure 5, the was-available set is left unchanged.
			self.SetState(protocol.StateAvailable)
			return nil
		}
		return c.repairFrom(ctx, t)
	}
	missing := 0
	for _, u := range closure.Members() {
		if _, ok := states[u]; !ok {
			missing++
		}
	}
	return fmt.Errorf("available copy recovery at %v: %d site(s) of closure %v still failed: %w",
		self.ID(), missing, closure, scheme.ErrAwaitingSites)
}

// repairFrom runs the version-vector exchange of Figure 5 against t and
// marks the local site available. With WithPagedRecovery the exchange
// is split into bounded pages continued under a resume token; the
// was-available join happens on the first page only (it is one logical
// join, however many pages carry the blocks). A source that vanishes
// mid-stream leaves the site comatose with a partially freshened image
// — harmless, since installs are version-monotone — and the next
// membership change re-runs recovery against a live source.
func (c *Controller) repairFrom(ctx context.Context, t protocol.SiteID) error {
	self := c.env.Self
	var cont block.Index
	first := true
	for {
		req := protocol.RecoveryRequest{Vector: self.Vector(), JoinW: first, MaxBlocks: c.recoveryPage, Cont: cont}
		resp, err := c.env.Transport.Call(ctx, self.ID(), t, req)
		if err != nil {
			if scheme.IsTransportError(err) {
				// The repair source vanished between the status exchange
				// and the version-vector exchange. Stay comatose; the next
				// membership change re-runs recovery against a live source.
				return fmt.Errorf("available copy recovery of %v from %v: %v: %w", self.ID(), t, err, scheme.ErrAwaitingSites)
			}
			return fmt.Errorf("available copy recovery of %v from %v: %w", self.ID(), t, err)
		}
		rec, ok := resp.(protocol.RecoveryReply)
		if !ok {
			return fmt.Errorf("available copy recovery: unexpected reply %T", resp)
		}
		if err := self.ApplyRecovery(rec); err != nil {
			return err
		}
		if first {
			// W_s <- W_t ∪ {s} (Figure 5); the reply carries W_t after
			// the join.
			if err := self.SetWasAvailable(rec.WasAvail.Add(self.ID())); err != nil {
				return err
			}
			first = false
		}
		if !rec.More {
			break
		}
		cont = rec.Next
	}
	self.SetState(protocol.StateAvailable)
	return nil
}

func pickAvailable(states map[protocol.SiteID]status) (protocol.SiteID, bool) {
	var best protocol.SiteID = -1
	var bestSum uint64
	for id, st := range states {
		if st.state != protocol.StateAvailable {
			continue
		}
		if best == -1 || st.sum > bestSum || (st.sum == bestSum && id < best) {
			best, bestSum = id, st.sum
		}
	}
	return best, best != -1
}

// mostCurrent picks the member of candidates with the greatest version
// sum, breaking ties toward the lowest id for determinism.
func mostCurrent(states map[protocol.SiteID]status, candidates protocol.SiteSet) protocol.SiteID {
	var best protocol.SiteID = -1
	var bestSum uint64
	for _, id := range candidates.Members() {
		st, ok := states[id]
		if !ok {
			continue
		}
		if best == -1 || st.sum > bestSum {
			best, bestSum = id, st.sum
		}
	}
	return best
}

// Closure computes C*(W), the closure of a was-available set (Definition
// 3.2, detailed in [8]): the least fixed point of
//
//	X = W ∪ ⋃ { W_u : u ∈ X, u has recovered }
//
// where lookup returns the stored was-available set of a recovered site
// (and ok=false for sites still failed, whose sets are unreadable). The
// closure contains every site that could hold data newer than any member
// of W; in particular it contains the site(s) that failed last.
func Closure(w protocol.SiteSet, lookup func(protocol.SiteID) (protocol.SiteSet, bool)) protocol.SiteSet {
	x := w
	for {
		next := x
		for _, u := range x.Members() {
			if wu, ok := lookup(u); ok {
				next = next.Union(wu)
			}
		}
		if next == x {
			return x
		}
		x = next
	}
}
