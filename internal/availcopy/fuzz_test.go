package availcopy

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"relidev/internal/block"
	"relidev/internal/protocol"
	"relidev/internal/scheme"
	"relidev/internal/simnet"
)

// TestClosureSafetyFuzz hammers the was-available machinery specifically:
// four sites, failure-heavy random schedules biased toward total failures,
// with recovery driven opportunistically. The invariant under test is the
// §3.2 safety property: a site that completes recovery (or any available
// site) never serves a value older than the last successful write —
// i.e. the closure C*(W_s) never under-approximates the set of sites
// that might hold newer data, even with the delayed (piggybacked)
// was-available updates.
func TestClosureSafetyFuzz(t *testing.T) {
	const (
		sites  = 4
		blocks = 4
		steps  = 6000
	)
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := newRig(t, sites, simnet.Multicast)
			ctx := context.Background()

			model := make(map[block.Index]uint64)
			var seq uint64
			totalFailureRecoveries := 0

			drive := func() {
				for {
					progress := false
					for i, rep := range r.replicas {
						if rep.State() != protocol.StateComatose {
							continue
						}
						err := r.ctrls[i].Recover(ctx)
						switch {
						case err == nil:
							progress = true
						case errors.Is(err, scheme.ErrAwaitingSites):
						default:
							t.Fatalf("recovery of %d: %v", i, err)
						}
					}
					if !progress {
						return
					}
				}
			}
			availableSites := func() []int {
				var out []int
				for i, rep := range r.replicas {
					if rep.State() == protocol.StateAvailable {
						out = append(out, i)
					}
				}
				return out
			}

			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // write at a random available site
					avail := availableSites()
					if len(avail) == 0 {
						continue
					}
					at := avail[rng.Intn(len(avail))]
					idx := block.Index(rng.Intn(blocks))
					seq++
					payload := make([]byte, testGeom.BlockSize)
					binary.LittleEndian.PutUint64(payload, seq)
					if err := r.ctrls[at].Write(ctx, idx, payload); err != nil {
						t.Fatalf("step %d: write at available site %d: %v", step, at, err)
					}
					model[idx] = seq
				case op < 6: // read at a random available site
					avail := availableSites()
					if len(avail) == 0 {
						continue
					}
					at := avail[rng.Intn(len(avail))]
					idx := block.Index(rng.Intn(blocks))
					got, err := r.ctrls[at].Read(ctx, idx)
					if err != nil {
						t.Fatalf("step %d: read at available site %d: %v", step, at, err)
					}
					if v := binary.LittleEndian.Uint64(got); v != model[idx] {
						t.Fatalf("step %d: site %d served %d for %v, model says %d (STALE READ)",
							step, at, v, idx, model[idx])
					}
				case op < 9: // fail a running site, preferring available ones
					// so the schedule reaches total failures often
					id := protocol.SiteID(rng.Intn(sites))
					if avail := availableSites(); len(avail) > 0 && rng.Intn(10) < 8 {
						id = protocol.SiteID(avail[rng.Intn(len(avail))])
					}
					if r.replicas[id].State() != protocol.StateFailed {
						wasLast := len(availableSites()) == 1 &&
							r.replicas[id].State() == protocol.StateAvailable
						r.fail(id)
						if wasLast {
							totalFailureRecoveries++
						}
					}
				default: // restart a random failed site and drive recovery
					id := protocol.SiteID(rng.Intn(sites))
					if r.replicas[id].State() == protocol.StateFailed {
						r.restart(id)
						drive()
					}
				}
			}
			// Heal completely and verify convergence.
			for i := range r.replicas {
				if r.replicas[i].State() == protocol.StateFailed {
					r.restart(protocol.SiteID(i))
				}
			}
			drive()
			for i, rep := range r.replicas {
				if rep.State() != protocol.StateAvailable {
					t.Fatalf("site %d is %v after full heal", i, rep.State())
				}
			}
			for b := 0; b < blocks; b++ {
				for i := range r.ctrls {
					got, err := r.ctrls[i].Read(ctx, block.Index(b))
					if err != nil {
						t.Fatalf("final read at %d: %v", i, err)
					}
					if v := binary.LittleEndian.Uint64(got); v != model[block.Index(b)] {
						t.Fatalf("final read of %d at site %d = %d, model %d", b, i, v, model[block.Index(b)])
					}
				}
			}
			if totalFailureRecoveries < 10 {
				t.Fatalf("fuzz exercised only %d total failures; schedule too gentle", totalFailureRecoveries)
			}
		})
	}
}

// FuzzClosure checks the was-available closure C*(W_s) of §3.2 against
// an independent breadth-first reachability model over 8 sites. The
// fuzz inputs pack one 8-bit was-available set per site into table
// (byte i belongs to site i) and mask out sites without an entry via
// present, mirroring a cluster where some status calls failed.
func FuzzClosure(f *testing.F) {
	f.Add(uint8(0b0001), uint64(0x0000000000000302), uint8(0b1111))
	f.Add(uint8(0b1000), uint64(0x0102040810204080), uint8(0b11111111))
	f.Add(uint8(0), uint64(0), uint8(0))
	f.Add(uint8(0xff), uint64(^uint64(0)), uint8(0x0f))

	f.Fuzz(func(t *testing.T, wRaw uint8, table uint64, present uint8) {
		w := protocol.SiteSet(wRaw)
		entry := func(id protocol.SiteID) (protocol.SiteSet, bool) {
			if id < 0 || id >= 8 || present&(1<<uint(id)) == 0 {
				return 0, false
			}
			return protocol.SiteSet((table >> (8 * uint(id))) & 0xff), true
		}

		got := Closure(w, entry)

		// Reference model: reachability from w along was-available edges.
		want := w
		for queue := w.Members(); len(queue) > 0; {
			u := queue[0]
			queue = queue[1:]
			wu, ok := entry(u)
			if !ok {
				continue
			}
			for _, v := range wu.Members() {
				if !want.Has(v) {
					want = want.Add(v)
					queue = append(queue, v)
				}
			}
		}
		if got != want {
			t.Fatalf("Closure(%b) = %b, reachability model says %b (table %#x, present %b)",
				w, got, want, table, present)
		}

		// Closure laws the recovery protocol depends on.
		if !w.SubsetOf(got) {
			t.Fatalf("closure %b does not contain its seed %b", got, w)
		}
		if again := Closure(got, entry); again != got {
			t.Fatalf("closure not idempotent: C*(%b) = %b but C*(C*) = %b", w, got, again)
		}
		for _, u := range got.Members() {
			if wu, ok := entry(u); ok && !wu.SubsetOf(got) {
				t.Fatalf("closure %b not closed under lookup: W_%d = %b escapes", got, u, wu)
			}
		}
		bigger := Closure(w.Union(protocol.SiteSet(present)), entry)
		if !got.SubsetOf(bigger) {
			t.Fatalf("closure not monotone: C*(%b) = %b exceeds C* of a superset = %b", w, got, bigger)
		}
	})
}
