package availcopy

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"relidev/internal/block"
	"relidev/internal/protocol"
	"relidev/internal/scheme"
	"relidev/internal/simnet"
	"relidev/internal/site"
	"relidev/internal/store"
)

var testGeom = block.Geometry{BlockSize: 16, NumBlocks: 4}

type rig struct {
	net      *simnet.Network
	replicas []*site.Replica
	ctrls    []*Controller
}

func newRig(t *testing.T, n int, mode simnet.Mode, opts ...Option) *rig {
	t.Helper()
	r := &rig{net: simnet.New(mode)}
	ids := make([]protocol.SiteID, n)
	for i := 0; i < n; i++ {
		ids[i] = protocol.SiteID(i)
	}
	for i := 0; i < n; i++ {
		st, err := store.NewMem(testGeom)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := site.New(site.Config{ID: ids[i], Store: st})
		if err != nil {
			t.Fatal(err)
		}
		r.replicas = append(r.replicas, rep)
		r.net.Attach(ids[i], rep)
	}
	for i := 0; i < n; i++ {
		ctrl, err := New(scheme.Env{Self: r.replicas[i], Transport: r.net, Sites: ids}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		r.ctrls = append(r.ctrls, ctrl)
	}
	return r
}

func (r *rig) fail(id protocol.SiteID) {
	r.replicas[id].SetState(protocol.StateFailed)
	r.net.SetUp(id, false)
}

func (r *rig) restart(id protocol.SiteID) {
	r.replicas[id].SetState(protocol.StateComatose)
	r.net.SetUp(id, true)
}

// driveRecovery keeps invoking Recover on comatose sites until quiescent,
// the way the cluster layer does.
func (r *rig) driveRecovery(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for {
		progress := false
		for i, rep := range r.replicas {
			if rep.State() != protocol.StateComatose {
				continue
			}
			err := r.ctrls[i].Recover(ctx)
			switch {
			case err == nil:
				progress = true
			case errors.Is(err, scheme.ErrAwaitingSites):
			default:
				t.Fatalf("recovery of site %d: %v", i, err)
			}
		}
		if !progress {
			return
		}
	}
}

func pad(s string) []byte {
	out := make([]byte, testGeom.BlockSize)
	copy(out, s)
	return out
}

func TestReadWriteRoundtrip(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[1].Write(ctx, 2, pad("data")); err != nil {
		t.Fatal(err)
	}
	for i, c := range r.ctrls {
		got, err := c.Read(ctx, 2)
		if err != nil {
			t.Fatalf("read at %d: %v", i, err)
		}
		if string(got[:4]) != "data" {
			t.Fatalf("read at %d = %q", i, got[:4])
		}
	}
}

func TestReadIsFree(t *testing.T) {
	r := newRig(t, 4, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("x")); err != nil {
		t.Fatal(err)
	}
	r.net.ResetStats()
	if _, err := r.ctrls[2].Read(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if st := r.net.Stats(); st.Transmissions != 0 {
		t.Fatalf("read cost %d transmissions, want 0 (§5: reads are local)", st.Transmissions)
	}
}

func TestWriteTrafficMulticast(t *testing.T) {
	// §5.1: available copy write = U_A = 1 broadcast + (n-1) replies with
	// all sites up.
	n := 4
	r := newRig(t, n, simnet.Multicast)
	ctx := context.Background()
	r.net.ResetStats()
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().Transmissions; got != uint64(n) {
		t.Fatalf("write traffic = %d, want %d", got, n)
	}
}

func TestWriteTrafficUnicast(t *testing.T) {
	// §5.2: available copy write = n + U_A - 2 = 2n - 2 with all up.
	n := 5
	r := newRig(t, n, simnet.Unicast)
	ctx := context.Background()
	r.net.ResetStats()
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().Transmissions; got != uint64(2*n-2) {
		t.Fatalf("write traffic = %d, want %d", got, 2*n-2)
	}
}

func TestSurvivesAllButOneFailure(t *testing.T) {
	// The headline availability property: a single available copy keeps
	// the block fully accessible — no quorum needed.
	r := newRig(t, 4, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("v1")); err != nil {
		t.Fatal(err)
	}
	r.fail(1)
	r.fail(2)
	r.fail(3)
	if err := r.ctrls[0].Write(ctx, 0, pad("v2")); err != nil {
		t.Fatalf("write with one copy left: %v", err)
	}
	got, err := r.ctrls[0].Read(ctx, 0)
	if err != nil {
		t.Fatalf("read with one copy left: %v", err)
	}
	if string(got[:2]) != "v2" {
		t.Fatalf("read = %q", got[:2])
	}
}

func TestRecoveryFromAvailableSite(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	r.fail(2)
	if err := r.ctrls[0].Write(ctx, 1, pad("while-down")); err != nil {
		t.Fatal(err)
	}
	r.restart(2)
	r.driveRecovery(t)
	if st := r.replicas[2].State(); st != protocol.StateAvailable {
		t.Fatalf("state = %v, want available", st)
	}
	got, err := r.ctrls[2].Read(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:10]) != "while-down" {
		t.Fatalf("recovered read = %q", got[:10])
	}
	// And the repaired site is a full citizen again: others can fail.
	r.fail(0)
	r.fail(1)
	if err := r.ctrls[2].Write(ctx, 1, pad("alone")); err != nil {
		t.Fatalf("write at repaired site alone: %v", err)
	}
}

func TestRecoveryTrafficMulticast(t *testing.T) {
	// §5.1: recovery = U_A + 2 (status broadcast + replies + the
	// version-vector exchange).
	n := 4
	r := newRig(t, n, simnet.Multicast)
	ctx := context.Background()
	r.fail(3)
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	r.restart(3)
	r.net.ResetStats()
	if err := r.ctrls[3].Recover(ctx); err != nil {
		t.Fatal(err)
	}
	// U_A here: 1 status broadcast + (n-1 up sites) replies, + 2 for the
	// exchange = n + 2... with all other sites up, U = n (self counts as
	// a participant). Paper counts U_A sites responding including the
	// local one; concretely: 1 + (n-1) + 2 = n + 2.
	if got := r.net.Stats().Transmissions; got != uint64(n+2) {
		t.Fatalf("recovery traffic = %d, want %d", got, n+2)
	}
}

func TestTotalFailureWaitsForClosure(t *testing.T) {
	// 3 sites. Writes shrink W to the live set; after a total failure
	// the early-failed site cannot recover until the closure (which
	// contains the last writer) is back.
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("w1")); err != nil {
		t.Fatal(err)
	}
	r.fail(2) // site 2 misses everything from here
	if err := r.ctrls[0].Write(ctx, 0, pad("w2")); err != nil {
		t.Fatal(err)
	}
	r.fail(1)
	if err := r.ctrls[0].Write(ctx, 0, pad("w3")); err != nil {
		t.Fatal(err)
	}
	// W_0 is now {0}: site 0 knows it alone received w3.
	if w := r.replicas[0].WasAvailable(); w != protocol.NewSiteSet(0) {
		t.Fatalf("W_0 = %v, want {0}", w)
	}
	r.fail(0) // total failure

	// Site 2 restarts first: its closure must chase to site 0 (via W_2
	// containing 0 and 1) and wait.
	r.restart(2)
	err := r.ctrls[2].Recover(ctx)
	if !errors.Is(err, scheme.ErrAwaitingSites) {
		t.Fatalf("early site recovery = %v, want ErrAwaitingSites", err)
	}
	if st := r.replicas[2].State(); st != protocol.StateComatose {
		t.Fatalf("state = %v, want comatose", st)
	}
	if _, err := r.ctrls[2].Read(ctx, 0); !errors.Is(err, scheme.ErrNotAvailable) {
		t.Fatalf("read at comatose site = %v, want ErrNotAvailable", err)
	}

	// Site 1 restarts: still no site 0, still waiting.
	r.restart(1)
	r.driveRecovery(t)
	if st := r.replicas[1].State(); st != protocol.StateComatose {
		t.Fatalf("site1 state = %v, want comatose", st)
	}

	// Site 0 (the last to fail) restarts: its closure is {0}, so it
	// recovers alone and the others cascade off it.
	r.restart(0)
	r.driveRecovery(t)
	for i, rep := range r.replicas {
		if st := rep.State(); st != protocol.StateAvailable {
			t.Fatalf("site %d state = %v after full recovery", i, st)
		}
	}
	for i, c := range r.ctrls {
		got, err := c.Read(ctx, 0)
		if err != nil {
			t.Fatalf("read at %d: %v", i, err)
		}
		if string(got[:2]) != "w3" {
			t.Fatalf("read at %d = %q, want w3 (the final write)", i, got[:2])
		}
	}
}

func TestLastToFailRecoversAloneAfterCoordinatingWrites(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	r.fail(1)
	r.fail(2)
	if err := r.ctrls[0].Write(ctx, 0, pad("solo")); err != nil {
		t.Fatal(err)
	}
	r.fail(0)
	r.restart(0)
	if err := r.ctrls[0].Recover(ctx); err != nil {
		t.Fatalf("last-to-fail recovery alone: %v", err)
	}
	got, err := r.ctrls[0].Read(ctx, 0)
	if err != nil || string(got[:4]) != "solo" {
		t.Fatalf("read = %q, %v", got[:4], err)
	}
}

func TestComatoseSiteRejectsWrites(t *testing.T) {
	// A write racing with a recovery must not land on a comatose site.
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	r.fail(2)
	r.restart(2) // comatose until recovery runs
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatalf("write with a comatose peer: %v", err)
	}
	// The comatose site did not absorb the write.
	if ver, _ := r.replicas[2].VersionLocal(0); ver != 0 {
		t.Fatalf("comatose site absorbed a write (version %v)", ver)
	}
	// And the coordinator's W excludes it.
	if w := r.replicas[0].WasAvailable(); w.Has(2) {
		t.Fatalf("W = %v includes comatose site", w)
	}
}

func TestWriteAtComatoseSiteRefused(t *testing.T) {
	r := newRig(t, 2, simnet.Multicast)
	ctx := context.Background()
	r.fail(1)
	r.restart(1)
	if err := r.ctrls[1].Write(ctx, 0, pad("x")); !errors.Is(err, scheme.ErrNotAvailable) {
		t.Fatalf("write at comatose site = %v, want ErrNotAvailable", err)
	}
	if _, err := r.ctrls[1].Read(ctx, 0); !errors.Is(err, scheme.ErrNotAvailable) {
		t.Fatalf("read at comatose site = %v, want ErrNotAvailable", err)
	}
}

func TestImmediateWAblationTightensSets(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast, WithImmediateW())
	ctx := context.Background()
	r.fail(2)
	// First write: piggyback (stale) says {0,1,2}; acks say {0,1}; the
	// immediate fix pushes {0,1} to site 1 right away.
	if err := r.ctrls[0].Write(ctx, 0, pad("w")); err != nil {
		t.Fatal(err)
	}
	if w := r.replicas[1].WasAvailable(); w.Has(2) {
		t.Fatalf("site1 W = %v still contains the failed site", w)
	}
}

func TestDelayedWIsOneWriteStale(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	r.fail(2)
	if err := r.ctrls[0].Write(ctx, 0, pad("w1")); err != nil {
		t.Fatal(err)
	}
	// Delayed scheme: site 1 still carries the stale superset.
	if w := r.replicas[1].WasAvailable(); !w.Has(2) {
		t.Fatalf("site1 W = %v, expected stale superset containing 2", w)
	}
	// The second write's piggyback is the first write's recipient set.
	if err := r.ctrls[0].Write(ctx, 0, pad("w2")); err != nil {
		t.Fatal(err)
	}
	// Union semantics keep it a superset; the coordinator's own set is
	// exact.
	if w := r.replicas[0].WasAvailable(); w != protocol.NewSiteSet(0, 1) {
		t.Fatalf("coordinator W = %v, want {0,1}", w)
	}
}

func TestClosureProperties(t *testing.T) {
	// Closure over a fixed lookup table.
	table := map[protocol.SiteID]protocol.SiteSet{
		0: protocol.NewSiteSet(0, 1),
		1: protocol.NewSiteSet(1, 2),
		2: protocol.NewSiteSet(2),
		3: protocol.NewSiteSet(3, 0),
	}
	lookup := func(u protocol.SiteID) (protocol.SiteSet, bool) {
		w, ok := table[u]
		return w, ok
	}
	got := Closure(protocol.NewSiteSet(0), lookup)
	if got != protocol.NewSiteSet(0, 1, 2) {
		t.Fatalf("closure = %v, want {0,1,2}", got)
	}
	// Unrecovered sites contribute nothing.
	gappy := func(u protocol.SiteID) (protocol.SiteSet, bool) {
		if u == 1 {
			return 0, false
		}
		return lookup(u)
	}
	got = Closure(protocol.NewSiteSet(0), gappy)
	if got != protocol.NewSiteSet(0, 1) {
		t.Fatalf("closure with failed site = %v, want {0,1}", got)
	}
}

// Properties: W ⊆ C*(W); idempotent; monotone in W.
func TestClosureLaws(t *testing.T) {
	f := func(w, a, b, c, d uint64, extra uint64) bool {
		const n = 8
		mask := uint64(1<<n) - 1
		table := map[protocol.SiteID]protocol.SiteSet{
			0: protocol.SiteSet(a & mask), 1: protocol.SiteSet(b & mask),
			2: protocol.SiteSet(c & mask), 3: protocol.SiteSet(d & mask),
		}
		lookup := func(u protocol.SiteID) (protocol.SiteSet, bool) {
			s, ok := table[u]
			return s, ok
		}
		w0 := protocol.SiteSet(w & mask)
		cl := Closure(w0, lookup)
		if !w0.SubsetOf(cl) {
			return false
		}
		if Closure(cl, lookup) != cl {
			return false
		}
		bigger := w0.Union(protocol.SiteSet(extra & mask))
		return cl.SubsetOf(Closure(bigger, lookup))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionSplitBrain documents the §6 caveat rather than a desired
// property: available copy assumes a partition-free network. Under a
// partition both sides keep accepting writes (each believes the other
// side failed), and after healing the copies disagree — which is exactly
// why the paper restricts the scheme to partition-free networks and
// points to voting where partitions are possible.
func TestPartitionSplitBrain(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	ctx := context.Background()
	if err := r.ctrls[0].Write(ctx, 0, pad("base")); err != nil {
		t.Fatal(err)
	}
	// Partition {0} | {1,2}.
	r.net.SetPartition(0, 1)
	if err := r.ctrls[0].Write(ctx, 0, pad("left")); err != nil {
		t.Fatalf("minority-side write: %v (available copy has no quorum check)", err)
	}
	if err := r.ctrls[1].Write(ctx, 0, pad("right")); err != nil {
		t.Fatalf("majority-side write: %v", err)
	}
	r.net.HealPartitions()
	left, err := r.ctrls[0].Read(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	right, err := r.ctrls[1].Read(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(left[:4]) == string(right[:4]) {
		t.Fatal("expected divergent copies after a partition — the §6 caveat vanished?")
	}
}

func TestNewInitialisesWasAvailableToFullSet(t *testing.T) {
	r := newRig(t, 3, simnet.Multicast)
	for i, rep := range r.replicas {
		if w := rep.WasAvailable(); w != protocol.FullSet(3) {
			t.Fatalf("site %d initial W = %v, want full set", i, w)
		}
	}
}

func TestEnvValidation(t *testing.T) {
	if _, err := New(scheme.Env{}); err == nil {
		t.Fatal("accepted empty env")
	}
}

func TestName(t *testing.T) {
	r := newRig(t, 2, simnet.Multicast)
	if r.ctrls[0].Name() != "available-copy" {
		t.Fatalf("Name = %q", r.ctrls[0].Name())
	}
}
