package simnet

import (
	"context"
	"sync"
	"testing"

	"relidev/internal/protocol"
)

// TestConcurrentTrafficAccounting hammers the network from many
// goroutines while flipping site states; counters must stay exact.
func TestConcurrentTrafficAccounting(t *testing.T) {
	net, _ := buildNet(t, Multicast, 4)
	ctx := context.Background()
	const (
		workers = 8
		calls   = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := protocol.SiteID(w % 4)
			for i := 0; i < calls; i++ {
				net.Broadcast(ctx, from, remotes(4, from), protocol.StatusRequest{})
			}
		}()
	}
	// Concurrent state flips (all sites stay up at the end).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			net.SetUp(2, i%2 == 0)
		}
		net.SetUp(2, true)
	}()
	wg.Wait()

	st := net.Stats()
	wantRequests := uint64(workers * calls) // one multicast each
	if st.Requests != wantRequests {
		t.Fatalf("requests = %d, want %d", st.Requests, wantRequests)
	}
	// Replies are at most 3 per broadcast, fewer when site 2 was down.
	if st.Replies > 3*wantRequests {
		t.Fatalf("replies = %d exceed maximum %d", st.Replies, 3*wantRequests)
	}
	if st.Transmissions != st.Requests+st.Replies {
		t.Fatalf("transmissions %d != requests %d + replies %d",
			st.Transmissions, st.Requests, st.Replies)
	}
}

// TestConcurrentModeAndPartitionChanges exercises the remaining mutable
// surface under the race detector.
func TestConcurrentModeAndPartitionChanges(t *testing.T) {
	net, _ := buildNet(t, Multicast, 3)
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				net.SetMode(Unicast)
			} else {
				net.SetMode(Multicast)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			net.SetPartition(1, i%2)
			net.HealPartitions()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			net.Call(ctx, 0, 1, protocol.StatusRequest{})
			net.ResetStats()
			_ = net.Up(1)
			_ = net.Mode()
		}
	}()
	wg.Wait()
}
