package simnet

import (
	"context"
	"testing"

	"relidev/internal/block"
	"relidev/internal/protocol"
)

func TestByteAccountingCall(t *testing.T) {
	net, _ := buildNet(t, Multicast, 2)
	req := protocol.VoteRequest{Block: 1}
	if _, err := net.Call(context.Background(), 0, 1, req); err != nil {
		t.Fatal(err)
	}
	want := uint64(protocol.WireSize(req) + protocol.WireSize(protocol.StatusReply{}))
	if got := net.Stats().Bytes; got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
}

func TestByteAccountingMulticastVsUnicast(t *testing.T) {
	// The same logical broadcast ships its payload once on a multicast
	// network and once per destination with unique addressing.
	req := protocol.PutRequest{Block: 0, Data: make([]byte, 512), Version: 1}
	reqSize := uint64(protocol.WireSize(req))

	mc, _ := buildNet(t, Multicast, 4)
	mc.Notify(context.Background(), 0, remotes(4, 0), req)
	if got := mc.Stats().Bytes; got != reqSize {
		t.Fatalf("multicast bytes = %d, want %d", got, reqSize)
	}

	uc, _ := buildNet(t, Unicast, 4)
	uc.Notify(context.Background(), 0, remotes(4, 0), req)
	if got := uc.Stats().Bytes; got != 3*reqSize {
		t.Fatalf("unicast bytes = %d, want %d", got, 3*reqSize)
	}
}

func TestWireSizeGrowsWithPayload(t *testing.T) {
	small := protocol.WireSize(protocol.PutRequest{Data: make([]byte, 16)})
	big := protocol.WireSize(protocol.PutRequest{Data: make([]byte, 4096)})
	if big-small != 4080 {
		t.Fatalf("put sizes %d and %d do not differ by the payload", small, big)
	}
	rec := protocol.RecoveryReply{
		Vector: block.NewVector(4),
		Blocks: []protocol.BlockCopy{{Data: make([]byte, 100)}},
	}
	if protocol.WireSize(rec) <= 100 {
		t.Fatalf("recovery reply size %d too small", protocol.WireSize(rec))
	}
	// Unknown types still count a header.
	if protocol.WireSize(struct{}{}) <= 0 {
		t.Fatal("unknown message size must be positive")
	}
}
