package simnet

import (
	"context"
	"sync"
	"testing"

	"relidev/internal/protocol"
)

// TestStatsByOp verifies that traffic labelled via protocol.WithOp is
// attributed to its §5 operation class while unlabelled traffic appears
// only in the totals.
func TestStatsByOp(t *testing.T) {
	net, _ := buildNet(t, Multicast, 4)
	ctx := context.Background()

	// write: one broadcast (1 tx) + 3 replies.
	net.Broadcast(protocol.WithOp(ctx, protocol.OpWrite), 0, remotes(4, 0), protocol.StatusRequest{})
	// recovery: one Call (2 tx).
	if _, err := net.Call(protocol.WithOp(ctx, protocol.OpRecovery), 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatal(err)
	}
	// read: one Fetch (1 tx, charged as the reply transfer).
	if _, err := net.Fetch(protocol.WithOp(ctx, protocol.OpRead), 0, 2, protocol.StatusRequest{}); err != nil {
		t.Fatal(err)
	}
	// An unrecognized label lands in "other".
	if _, err := net.Fetch(protocol.WithOp(ctx, "compact"), 0, 2, protocol.StatusRequest{}); err != nil {
		t.Fatal(err)
	}
	// Unlabelled traffic counts only toward the totals.
	if _, err := net.Call(ctx, 0, 3, protocol.StatusRequest{}); err != nil {
		t.Fatal(err)
	}

	st := net.Stats()
	want := map[string]OpStats{
		protocol.OpWrite:    {Transmissions: 4, Requests: 1, Replies: 3},
		protocol.OpRecovery: {Transmissions: 2, Requests: 1, Replies: 1},
		protocol.OpRead:     {Transmissions: 1, Requests: 0, Replies: 1},
		"other":             {Transmissions: 1, Requests: 0, Replies: 1},
	}
	for op, w := range want {
		if got := st.ByOp[op]; got != w {
			t.Errorf("ByOp[%s] = %+v, want %+v", op, got, w)
		}
	}
	var attributed uint64
	for _, o := range st.ByOp {
		attributed += o.Transmissions
	}
	if attributed != st.Transmissions-2 { // the unlabelled Call's 2 tx
		t.Errorf("attributed %d of %d transmissions, want all but 2", attributed, st.Transmissions)
	}
}

// TestStatsByOpSkipsEmptyBuckets keeps idle classes out of the map so
// JSON reports only show classes that generated traffic.
func TestStatsByOpSkipsEmptyBuckets(t *testing.T) {
	net, _ := buildNet(t, Multicast, 2)
	if _, err := net.Fetch(protocol.WithOp(context.Background(), protocol.OpRead), 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if len(st.ByOp) != 1 {
		t.Fatalf("ByOp = %v, want only the read bucket", st.ByOp)
	}
}

// TestStatsSnapshotNeverTears hammers the network with concurrent
// traffic, resets, and snapshots, and asserts the documented snapshot
// invariant: within one bank, Transmissions is charged first and loaded
// last, so every snapshot satisfies Transmissions >= Requests + Replies
// (globally and per ByOp bucket). Run with -race this also exercises
// the bank swap for data races.
func TestStatsSnapshotNeverTears(t *testing.T) {
	net, _ := buildNet(t, Unicast, 4)
	ctx := protocol.WithOp(context.Background(), protocol.OpWrite)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(self protocol.SiteID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				net.Broadcast(ctx, self, remotes(4, self), protocol.StatusRequest{})
			}
		}(protocol.SiteID(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			net.ResetStats()
		}
		close(stop)
	}()

	checkInvariant := func(st Stats) {
		if st.Transmissions < st.Requests+st.Replies {
			t.Errorf("torn snapshot: transmissions %d < requests %d + replies %d",
				st.Transmissions, st.Requests, st.Replies)
		}
		for op, o := range st.ByOp {
			if o.Transmissions < o.Requests+o.Replies {
				t.Errorf("torn ByOp[%s]: %+v", op, o)
			}
		}
	}
	for {
		select {
		case <-stop:
			wg.Wait()
			// Quiesced: the final snapshot is exact and consistent.
			st := net.Stats()
			checkInvariant(st)
			return
		default:
			checkInvariant(net.Stats())
		}
	}
}
