package simnet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"relidev/internal/protocol"
)

// echoHandler records calls and answers StatusRequests. Handlers are
// invoked concurrently by the network's fan-out, so the counter is
// atomic.
type echoHandler struct {
	id    protocol.SiteID
	calls atomic.Int64
	fail  error
}

func (h *echoHandler) Handle(ctx context.Context, from protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	h.calls.Add(1)
	if h.fail != nil {
		return nil, h.fail
	}
	return protocol.StatusReply{State: protocol.StateAvailable, VersionSum: uint64(h.id)}, nil
}

func buildNet(t *testing.T, mode Mode, n int) (*Network, []*echoHandler) {
	t.Helper()
	net := New(mode)
	hs := make([]*echoHandler, n)
	for i := 0; i < n; i++ {
		hs[i] = &echoHandler{id: protocol.SiteID(i)}
		net.Attach(protocol.SiteID(i), hs[i])
	}
	return net, hs
}

func remotes(n int, self protocol.SiteID) []protocol.SiteID {
	out := make([]protocol.SiteID, 0, n-1)
	for i := 0; i < n; i++ {
		if protocol.SiteID(i) != self {
			out = append(out, protocol.SiteID(i))
		}
	}
	return out
}

func TestCallCountsTwoTransmissions(t *testing.T) {
	net, hs := buildNet(t, Multicast, 3)
	resp, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if _, ok := resp.(protocol.StatusReply); !ok {
		t.Fatalf("resp = %T, want StatusReply", resp)
	}
	if hs[1].calls.Load() != 1 {
		t.Fatalf("handler calls = %d, want 1", hs[1].calls.Load())
	}
	st := net.Stats()
	if st.Transmissions != 2 || st.Requests != 1 || st.Replies != 1 {
		t.Fatalf("stats = %+v, want 2/1/1", st)
	}
}

func TestSelfCallIsFree(t *testing.T) {
	net, hs := buildNet(t, Multicast, 2)
	if _, err := net.Call(context.Background(), 0, 0, protocol.StatusRequest{}); err != nil {
		t.Fatalf("self Call: %v", err)
	}
	if hs[0].calls.Load() != 1 {
		t.Fatalf("handler calls = %d, want 1", hs[0].calls.Load())
	}
	if st := net.Stats(); st.Transmissions != 0 {
		t.Fatalf("self call cost %d transmissions, want 0", st.Transmissions)
	}
}

func TestFetchCountsOneTransmission(t *testing.T) {
	net, _ := buildNet(t, Multicast, 2)
	if _, err := net.Fetch(context.Background(), 0, 1, protocol.FetchRequest{Block: 3}); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if st := net.Stats(); st.Transmissions != 1 || st.Replies != 1 {
		t.Fatalf("stats = %+v, want exactly one reply transmission", st)
	}
}

func TestBroadcastAccountingMulticast(t *testing.T) {
	// 1 request transmission + one reply per up destination.
	net, _ := buildNet(t, Multicast, 5)
	net.SetUp(3, false)
	res := net.Broadcast(context.Background(), 0, remotes(5, 0), protocol.StatusRequest{})
	if len(res) != 4 {
		t.Fatalf("results = %d, want 4", len(res))
	}
	if !errors.Is(res[3].Err, protocol.ErrSiteDown) {
		t.Fatalf("down site error = %v, want ErrSiteDown", res[3].Err)
	}
	st := net.Stats()
	if st.Requests != 1 {
		t.Fatalf("requests = %d, want 1 (multicast)", st.Requests)
	}
	if st.Replies != 3 {
		t.Fatalf("replies = %d, want 3 (three up destinations)", st.Replies)
	}
	if st.Transmissions != 4 {
		t.Fatalf("total = %d, want 4", st.Transmissions)
	}
}

func TestBroadcastAccountingUnicast(t *testing.T) {
	// One request per destination — even down ones: the sender cannot
	// know who is up — plus one reply per up destination.
	net, _ := buildNet(t, Unicast, 5)
	net.SetUp(3, false)
	net.Broadcast(context.Background(), 0, remotes(5, 0), protocol.StatusRequest{})
	st := net.Stats()
	if st.Requests != 4 {
		t.Fatalf("requests = %d, want 4 (unicast)", st.Requests)
	}
	if st.Replies != 3 {
		t.Fatalf("replies = %d, want 3", st.Replies)
	}
}

func TestNotifyChargesNoReplies(t *testing.T) {
	for _, mode := range []Mode{Multicast, Unicast} {
		t.Run(mode.String(), func(t *testing.T) {
			net, hs := buildNet(t, mode, 4)
			res := net.Notify(context.Background(), 0, remotes(4, 0), protocol.StatusRequest{})
			for id, r := range res {
				if r.Err != nil {
					t.Fatalf("site %v: %v", id, r.Err)
				}
			}
			for _, h := range hs[1:] {
				if h.calls.Load() != 1 {
					t.Fatalf("handler calls = %d, want 1", h.calls.Load())
				}
			}
			st := net.Stats()
			wantReq := uint64(1)
			if mode == Unicast {
				wantReq = 3
			}
			if st.Requests != wantReq || st.Replies != 0 {
				t.Fatalf("mode %v stats = %+v, want req %d replies 0", mode, st, wantReq)
			}
		})
	}
}

func TestDownSiteDoesNotAnswer(t *testing.T) {
	net, hs := buildNet(t, Multicast, 2)
	net.SetUp(1, false)
	_, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{})
	if !errors.Is(err, protocol.ErrSiteDown) {
		t.Fatalf("err = %v, want ErrSiteDown", err)
	}
	if hs[1].calls.Load() != 0 {
		t.Fatal("down site's handler was invoked")
	}
	net.SetUp(1, true)
	if _, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	net, _ := buildNet(t, Multicast, 3)
	net.SetPartition(2, 1)
	_, err := net.Call(context.Background(), 0, 2, protocol.StatusRequest{})
	if !errors.Is(err, protocol.ErrSiteUnreachable) {
		t.Fatalf("err = %v, want ErrSiteUnreachable", err)
	}
	// Same partition still works.
	if _, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatalf("same-partition call: %v", err)
	}
	net.HealPartitions()
	if _, err := net.Call(context.Background(), 0, 2, protocol.StatusRequest{}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestHandlerErrorProducesNoReplyTraffic(t *testing.T) {
	net, hs := buildNet(t, Multicast, 2)
	hs[1].fail = fmt.Errorf("disk on fire")
	if _, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{}); err == nil {
		t.Fatal("Call swallowed handler error")
	}
	st := net.Stats()
	if st.Requests != 1 || st.Replies != 0 {
		t.Fatalf("stats = %+v, want 1 request, 0 replies", st)
	}
}

func TestCancelledContext(t *testing.T) {
	net, hs := buildNet(t, Multicast, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.Call(ctx, 0, 1, protocol.StatusRequest{}); err == nil {
		t.Fatal("Call with cancelled context succeeded")
	}
	res := net.Broadcast(ctx, 0, remotes(2, 0), protocol.StatusRequest{})
	if res[1].Err == nil {
		t.Fatal("Broadcast with cancelled context succeeded")
	}
	if hs[1].calls.Load() != 0 {
		t.Fatal("handler invoked despite cancelled context")
	}
	if st := net.Stats(); st.Transmissions != 0 {
		t.Fatalf("cancelled context cost %d transmissions", st.Transmissions)
	}
}

func TestResetStats(t *testing.T) {
	net, _ := buildNet(t, Multicast, 2)
	if _, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatal(err)
	}
	net.ResetStats()
	if st := net.Stats(); st.Transmissions != 0 || len(st.ByKind) != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestStatsByKind(t *testing.T) {
	net, _ := buildNet(t, Unicast, 3)
	net.Broadcast(context.Background(), 0, remotes(3, 0), protocol.VoteRequest{Block: 1})
	st := net.Stats()
	if st.ByKind["vote"] != 2 {
		t.Fatalf("ByKind[vote] = %d, want 2", st.ByKind["vote"])
	}
}

func TestStatsSnapshotIsIsolated(t *testing.T) {
	net, _ := buildNet(t, Multicast, 2)
	net.Broadcast(context.Background(), 0, remotes(2, 0), protocol.VoteRequest{})
	snap := net.Stats()
	snap.ByKind["vote"] = 999
	if net.Stats().ByKind["vote"] == 999 {
		t.Fatal("Stats exposed internal map")
	}
}

// TestBroadcastSelfDestinationIsFree pins the §5 rule that a site never
// pays wire traffic to talk to itself: a unicast broadcast whose
// destination list includes the sender charges one request per *remote*
// destination, i.e. len(dests)-1, and the self entry produces no result.
func TestBroadcastSelfDestinationIsFree(t *testing.T) {
	net, hs := buildNet(t, Unicast, 4)
	dests := []protocol.SiteID{0, 1, 2, 3} // includes self (0)
	res := net.Broadcast(context.Background(), 0, dests, protocol.StatusRequest{})
	if len(res) != 3 {
		t.Fatalf("results = %d, want 3 (self filtered)", len(res))
	}
	if _, ok := res[0]; ok {
		t.Fatal("broadcast delivered to the sender itself")
	}
	if hs[0].calls.Load() != 0 {
		t.Fatal("sender handled its own broadcast")
	}
	st := net.Stats()
	if st.Requests != uint64(len(dests)-1) {
		t.Fatalf("requests = %d, want %d (self-send is free)", st.Requests, len(dests)-1)
	}
	if st.Replies != 3 {
		t.Fatalf("replies = %d, want 3", st.Replies)
	}
}

func TestEmptyBroadcastIsFree(t *testing.T) {
	net, _ := buildNet(t, Multicast, 1)
	net.Broadcast(context.Background(), 0, nil, protocol.StatusRequest{})
	if st := net.Stats(); st.Transmissions != 0 {
		t.Fatalf("empty broadcast cost %d transmissions", st.Transmissions)
	}
}

func TestModeString(t *testing.T) {
	if Multicast.String() != "multicast" || Unicast.String() != "unicast" {
		t.Fatal("Mode.String mismatch")
	}
	if Mode(0).String() != "mode(0)" {
		t.Fatal("invalid Mode.String mismatch")
	}
}

func TestFaultRuleDropRequest(t *testing.T) {
	net, hs := buildNet(t, Multicast, 2)
	sentinel := errors.New("injected")
	net.SetFaultRule(func(from, to protocol.SiteID, req protocol.Request) (FaultDecision, error) {
		return DropRequest, sentinel
	})
	_, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want injected sentinel", err)
	}
	if hs[1].calls.Load() != 0 {
		t.Fatal("handler ran despite dropped request")
	}
	net.SetFaultRule(nil)
	if _, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{}); err != nil {
		t.Fatalf("call after rule removed: %v", err)
	}
}

func TestFaultRuleDropReplyRunsHandler(t *testing.T) {
	net, hs := buildNet(t, Multicast, 2)
	sentinel := errors.New("reply lost")
	net.SetFaultRule(func(from, to protocol.SiteID, req protocol.Request) (FaultDecision, error) {
		return DropReply, sentinel
	})
	_, err := net.Call(context.Background(), 0, 1, protocol.StatusRequest{})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want reply-lost sentinel", err)
	}
	if hs[1].calls.Load() != 1 {
		t.Fatalf("handler calls = %d, want 1 (request delivered, reply lost)", hs[1].calls.Load())
	}
	st := net.Stats()
	if st.Replies != 0 {
		t.Fatalf("replies = %d, want 0 (lost reply must not be charged)", st.Replies)
	}
}

func TestFaultRuleAppliesPerBroadcastDestination(t *testing.T) {
	net, hs := buildNet(t, Multicast, 4)
	sentinel := errors.New("link down")
	net.SetFaultRule(func(from, to protocol.SiteID, req protocol.Request) (FaultDecision, error) {
		if to == 2 {
			return DropRequest, sentinel
		}
		return Deliver, nil
	})
	res := net.Broadcast(context.Background(), 0, remotes(4, 0), protocol.StatusRequest{})
	if !errors.Is(res[2].Err, sentinel) {
		t.Fatalf("dest 2: %v, want sentinel", res[2].Err)
	}
	for _, id := range []protocol.SiteID{1, 3} {
		if res[id].Err != nil {
			t.Fatalf("dest %v: %v, want nil", id, res[id].Err)
		}
	}
	if hs[2].calls.Load() != 0 {
		t.Fatal("dest 2 handled a dropped request")
	}
	if st := net.Stats(); st.Requests != 1 {
		t.Fatalf("multicast requests = %d, want 1 (drop is per-link, transmission already charged)", st.Requests)
	}
}
