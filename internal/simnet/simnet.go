// Package simnet is an in-process network connecting replica sites.
//
// It provides the communication model of the paper (§2, §5): reliable
// message delivery, no spontaneous partitions (partitions can be injected
// explicitly for tests of the voting scheme), fail-stop sites that simply
// do not answer, and — crucially — exact accounting of *high-level
// transmissions* in both network flavours analysed in §5:
//
//   - Multicast: one transmission reaches any number of destinations;
//     each individually addressed reply is one transmission.
//   - Unique addressing: one transmission per destination, whether or not
//     the destination is up (the sender cannot know).
//
// The accounting deliberately mirrors the paper's conventions: low-level
// acknowledgements guaranteed by the reliable-delivery assumption are not
// counted (a naive available copy write is exactly one transmission), and
// a lazy block fetch during a voting read costs one transmission — only
// the block transfer itself is charged (§5.1: "at most U_V+1 if the local
// version is not up to date").
package simnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"relidev/internal/protocol"
)

// Mode selects the §5 network flavour.
type Mode int

// Network modes.
const (
	// Multicast models §5.1: a single transmission may be received by
	// several sites.
	Multicast Mode = iota + 1
	// Unicast models §5.2: transmissions are addressed to an individual
	// site, so a logical broadcast costs one transmission per destination.
	Unicast
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Multicast:
		return "multicast"
	case Unicast:
		return "unicast"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Stats is a snapshot of the high-level transmission counters defined
// in §5, plus the byte-level alternative metric §5 mentions ("it is
// possible to instead focus on the sizes of the messages").
//
// Snapshot semantics: counters live in one bank swapped out atomically
// by ResetStats, so a snapshot never mixes pre- and post-reset values.
// Within a bank, a snapshot taken while deliveries are in flight is
// *conservative*: Transmissions is incremented first on every charge
// and loaded last, so Transmissions >= Requests + Replies holds in
// every snapshot. Quiesce the network for exact totals; an operation
// in flight across a ResetStats may split its charges between the old
// and new bank.
type Stats struct {
	// Transmissions is the total number of high-level transmissions.
	Transmissions uint64
	// Requests counts transmissions that carried a request.
	Requests uint64
	// Replies counts transmissions that carried a reply.
	Replies uint64
	// Bytes is the total estimated wire volume of all transmissions. A
	// multicast transmission's payload is charged once regardless of how
	// many sites receive it; unique addressing charges per destination.
	Bytes uint64
	// ByKind breaks down request transmissions by request kind.
	ByKind map[string]uint64
	// ByOp breaks down transmissions by the §5 operation class that
	// generated them, for traffic labelled via protocol.WithOp (keys
	// are the protocol.Op* constants, plus "other" for unrecognized
	// labels). Unlabelled traffic appears only in the totals.
	ByOp map[string]OpStats
}

// OpStats is the per-operation-class slice of the traffic counters.
type OpStats struct {
	Transmissions uint64
	Requests      uint64
	Replies       uint64
}

// opClasses are the attribution buckets of Stats.ByOp; unlabelled
// traffic (empty CtxOp) is not attributed at all.
var opClasses = [...]string{protocol.OpWrite, protocol.OpRead, protocol.OpRecovery, protocol.OpRepair, "other"}

// opClassIndex maps a context operation label to its bucket, or -1 for
// unlabelled traffic.
func opClassIndex(op string) int {
	switch op {
	case "":
		return -1
	case protocol.OpWrite:
		return 0
	case protocol.OpRead:
		return 1
	case protocol.OpRecovery:
		return 2
	case protocol.OpRepair:
		return 3
	default:
		return len(opClasses) - 1
	}
}

// opCounters is one ByOp bucket's live counters.
type opCounters struct {
	transmissions atomic.Uint64
	requests      atomic.Uint64
	replies       atomic.Uint64
}

// counterBank holds one epoch of traffic counters. ResetStats swaps
// the whole bank, so Stats never observes a half-zeroed state.
type counterBank struct {
	transmissions atomic.Uint64
	requests      atomic.Uint64
	replies       atomic.Uint64
	bytes         atomic.Uint64
	byOp          [len(opClasses)]opCounters
	// byKind stays a map under its own narrow mutex: kinds are few and
	// the map is touched once per logical broadcast, not per delivery.
	kindMu sync.Mutex
	byKind map[string]uint64
}

func newCounterBank() *counterBank {
	return &counterBank{byKind: make(map[string]uint64)}
}

// Network connects up to protocol.MaxSites sites. The zero value is not
// usable; use New.
type Network struct {
	mu        sync.Mutex
	mode      Mode
	handlers  map[protocol.SiteID]protocol.Handler
	up        map[protocol.SiteID]bool
	partition map[protocol.SiteID]int

	// Traffic counters are contention-free atomics grouped into a bank:
	// metering sits on every message of the data path and must not
	// serialize concurrent deliveries behind the configuration mutex,
	// and ResetStats swaps the bank pointer instead of zeroing counters
	// one by one (zeroing in place lets a concurrent Stats observe a
	// torn half-reset snapshot).
	bank atomic.Pointer[counterBank]

	// latency is the simulated round-trip time per remote interaction,
	// in nanoseconds. Zero (the default) keeps the network instantaneous;
	// it never affects §5 transmission accounting.
	latency atomic.Int64

	// faultRule, when set, is consulted once per remote delivery (after
	// routing, before the handler) and may fail or degrade it. It is the
	// injection point the faultnet decorator uses: deciding inside the
	// fan-out keeps faults per-destination while the §5 accounting of
	// the enclosing broadcast stays exact.
	faultMu   sync.RWMutex
	faultRule FaultRule
}

// FaultDecision tells the network what to do with one delivery.
type FaultDecision int

// Fault decisions.
const (
	// Deliver proceeds normally.
	Deliver FaultDecision = iota
	// DropRequest fails the delivery without invoking the destination
	// handler: the request was lost on the wire.
	DropRequest
	// DropReply invokes the destination handler (the request arrived and
	// took effect) but discards its response: the caller cannot tell
	// whether the request was processed. No reply traffic is charged.
	DropReply
)

// FaultRule decides the fate of one remote delivery. It runs on the
// delivering goroutine, so it may sleep to model added latency before
// returning Deliver. The returned error is reported to the caller for
// DropRequest and DropReply.
type FaultRule func(from, to protocol.SiteID, req protocol.Request) (FaultDecision, error)

var _ protocol.Transport = (*Network)(nil)

// New returns an empty network in the given mode.
func New(mode Mode) *Network {
	n := &Network{
		mode:      mode,
		handlers:  make(map[protocol.SiteID]protocol.Handler),
		up:        make(map[protocol.SiteID]bool),
		partition: make(map[protocol.SiteID]int),
	}
	n.bank.Store(newCounterBank())
	return n
}

// Mode returns the network flavour.
func (n *Network) Mode() Mode {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mode
}

// SetMode switches the network flavour. Tests use this to compare §5.1
// and §5.2 accounting over identical protocol runs.
func (n *Network) SetMode(m Mode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mode = m
}

// Attach registers the handler serving site id and marks the site up.
func (n *Network) Attach(id protocol.SiteID, h protocol.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
	n.up[id] = true
}

// SetUp marks a site's process up or down. A down site neither receives
// requests nor produces replies (fail-stop).
func (n *Network) SetUp(id protocol.SiteID, up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up[id] = up
}

// Up reports whether the site's process is running.
func (n *Network) Up(id protocol.SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up[id]
}

// SetPartition places a site in a partition group. Sites in different
// groups cannot exchange messages. The default group is 0. This exists
// only to demonstrate the §6 caveat that available copy requires a
// partition-free network; no production path creates partitions.
func (n *Network) SetPartition(id protocol.SiteID, group int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition[id] = group
}

// HealPartitions returns every site to partition group 0.
func (n *Network) HealPartitions() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.partition {
		n.partition[id] = 0
	}
}

// SetLatency sets the simulated round-trip time charged to every remote
// interaction (one per destination of a broadcast). It models wire and
// peer service time so that benchmarks can observe round-trip overlap;
// §5 transmission accounting is unaffected. Zero restores an
// instantaneous network.
func (n *Network) SetLatency(d time.Duration) {
	n.latency.Store(int64(d))
}

// SetFaultRule installs (or, with nil, removes) the per-delivery fault
// rule. Only test harnesses and the faultnet decorator call this; no
// production path injects faults.
func (n *Network) SetFaultRule(rule FaultRule) {
	n.faultMu.Lock()
	n.faultRule = rule
	n.faultMu.Unlock()
}

// applyFault consults the fault rule for one remote delivery. It
// reports whether the handler should still run and the injected error,
// if any.
func (n *Network) applyFault(from, to protocol.SiteID, req protocol.Request) (deliver bool, err error) {
	n.faultMu.RLock()
	rule := n.faultRule
	n.faultMu.RUnlock()
	if rule == nil {
		return true, nil
	}
	switch dec, ferr := rule(from, to, req); dec {
	case DropRequest:
		return false, ferr
	case DropReply:
		return true, ferr
	default:
		return true, nil
	}
}

// sleepLatency blocks for the configured simulated round-trip time,
// honoring ctx cancellation. It returns ctx.Err when cancelled.
func (n *Network) sleepLatency(ctx context.Context) error {
	d := time.Duration(n.latency.Load())
	if d <= 0 {
		return nil
	}
	//relidev:allow nondeterminism: simulated latency is the one sanctioned wall-clock sleep in simnet; it delays delivery without feeding any replayed decision or digest
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats returns a snapshot of the traffic counters. See the Stats type
// for the exact mid-flight guarantees: per-snapshot Transmissions >=
// Requests + Replies always holds (every charge bumps Transmissions
// first, and the snapshot loads it last), and a snapshot never mixes
// counts from before and after a ResetStats.
func (n *Network) Stats() Stats {
	b := n.bank.Load()
	out := Stats{
		Requests: b.requests.Load(),
		Replies:  b.replies.Load(),
		Bytes:    b.bytes.Load(),
	}
	byOp := make(map[string]OpStats, len(opClasses))
	for i, op := range opClasses {
		oc := &b.byOp[i]
		s := OpStats{
			Requests: oc.requests.Load(),
			Replies:  oc.replies.Load(),
		}
		s.Transmissions = oc.transmissions.Load()
		if s.Transmissions == 0 && s.Requests == 0 && s.Replies == 0 {
			continue
		}
		byOp[op] = s
	}
	b.kindMu.Lock()
	out.ByKind = make(map[string]uint64, len(b.byKind))
	for k, v := range b.byKind {
		out.ByKind[k] = v
	}
	b.kindMu.Unlock()
	out.ByOp = byOp
	// Loaded last so the snapshot invariant holds (see Stats doc).
	out.Transmissions = b.transmissions.Load()
	return out
}

// ResetStats zeroes the traffic counters by installing a fresh bank.
// Concurrent Stats callers see either the old bank's totals or the new
// (zero) ones, never a torn mixture; an operation in flight across the
// swap may split its charges between the banks.
func (n *Network) ResetStats() {
	n.bank.Store(newCounterBank())
}

// route returns the handler for `to` if it is up and reachable from
// `from`, without holding the lock during the handler call.
func (n *Network) route(from, to protocol.SiteID) (protocol.Handler, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up[to] {
		return nil, fmt.Errorf("%v -> %v: %w", from, to, protocol.ErrSiteDown)
	}
	if n.partition[from] != n.partition[to] {
		return nil, fmt.Errorf("%v -> %v: %w", from, to, protocol.ErrSiteUnreachable)
	}
	h, ok := n.handlers[to]
	if !ok {
		return nil, fmt.Errorf("%v -> %v: %w", from, to, protocol.ErrSiteDown)
	}
	return h, nil
}

// countRequest charges request transmissions. opIdx attributes them to
// a §5 operation class (-1 for unlabelled traffic). Transmissions is
// bumped before Requests — paired with Stats loading it last, this
// keeps Transmissions >= Requests + Replies in every snapshot.
func (n *Network) countRequest(opIdx int, kind string, transmissions, bytes uint64) {
	b := n.bank.Load()
	b.transmissions.Add(transmissions)
	b.requests.Add(transmissions)
	b.bytes.Add(bytes)
	if opIdx >= 0 {
		oc := &b.byOp[opIdx]
		oc.transmissions.Add(transmissions)
		oc.requests.Add(transmissions)
	}
	b.kindMu.Lock()
	b.byKind[kind] += transmissions
	b.kindMu.Unlock()
}

func (n *Network) countReply(opIdx int, resp protocol.Response) {
	b := n.bank.Load()
	b.transmissions.Add(1)
	b.replies.Add(1)
	b.bytes.Add(uint64(protocol.WireSize(resp)))
	if opIdx >= 0 {
		oc := &b.byOp[opIdx]
		oc.transmissions.Add(1)
		oc.replies.Add(1)
	}
}

// Call sends a request to one site and waits for the response. It is
// charged as two transmissions: the request and the response (this is how
// §5.1 counts the recovery version-vector exchange). A site calling
// itself is free: local operations generate no network traffic.
func (n *Network) Call(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if from == to {
		h, err := n.route(from, to)
		if err != nil {
			return nil, err
		}
		return h.Handle(ctx, from, req)
	}
	h, err := n.route(from, to)
	if err != nil {
		return nil, err
	}
	opIdx := opClassIndex(protocol.CtxOp(ctx))
	n.countRequest(opIdx, req.Kind(), 1, uint64(protocol.WireSize(req)))
	deliver, ferr := n.applyFault(from, to, req)
	if !deliver {
		return nil, ferr
	}
	if err := n.sleepLatency(ctx); err != nil {
		return nil, err
	}
	resp, err := h.Handle(ctx, from, req)
	if ferr != nil {
		// Reply lost: the handler ran, but its outcome is invisible to
		// the caller and no reply traffic is charged.
		return nil, ferr
	}
	if err != nil {
		return nil, err
	}
	n.countReply(opIdx, resp)
	return resp, nil
}

// Fetch pulls data from one site and is charged as a single transmission:
// the block transfer itself. The request is piggybacked on state the
// destination already returned during quorum collection (§5.1 charges a
// voting read repair exactly one extra message).
func (n *Network) Fetch(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if from == to {
		h, err := n.route(from, to)
		if err != nil {
			return nil, err
		}
		return h.Handle(ctx, from, req)
	}
	h, err := n.route(from, to)
	if err != nil {
		return nil, err
	}
	deliver, ferr := n.applyFault(from, to, req)
	if !deliver {
		return nil, ferr
	}
	if err := n.sleepLatency(ctx); err != nil {
		return nil, err
	}
	resp, err := h.Handle(ctx, from, req)
	if ferr != nil {
		return nil, ferr
	}
	if err != nil {
		return nil, err
	}
	n.countReply(opClassIndex(protocol.CtxOp(ctx)), resp)
	return resp, nil
}

// Broadcast sends a request to every site in dests and collects the
// per-site results. Charged as one transmission in multicast mode or one
// per destination in unicast mode, plus one transmission per reply
// received. A destination equal to the sender is skipped and never
// charged: local operations cost no traffic (§5). Destinations are
// contacted concurrently; the round trips overlap.
func (n *Network) Broadcast(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	results := n.deliver(ctx, from, dests, req, true)
	return results
}

// Notify sends a request to every site in dests without charging for
// replies: the reliable-delivery assumption stands in for per-site
// acknowledgements (§5.1: a naive available copy write is one message;
// the voting block update after quorum collection is likewise one).
// Handler errors are still reported to the caller for correctness.
func (n *Network) Notify(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	return n.deliver(ctx, from, dests, req, false)
}

func (n *Network) deliver(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request, countReplies bool) map[protocol.SiteID]protocol.Result {
	results := make(map[protocol.SiteID]protocol.Result, len(dests))
	if err := ctx.Err(); err != nil {
		for _, to := range dests {
			results[to] = protocol.Result{Err: err}
		}
		return results
	}
	// A destination equal to the sender is skipped before accounting: a
	// self-send is a local operation and costs no traffic per §5.
	targets := dests
	for _, to := range dests {
		if to == from {
			targets = make([]protocol.SiteID, 0, len(dests)-1)
			for _, t := range dests {
				if t != from {
					targets = append(targets, t)
				}
			}
			break
		}
	}
	if len(targets) == 0 {
		return results
	}
	reqBytes := uint64(protocol.WireSize(req))
	opIdx := opClassIndex(protocol.CtxOp(ctx))
	switch n.Mode() {
	case Unicast:
		// One transmission per destination, whether or not it is up: the
		// sender cannot know (§5.2).
		n.countRequest(opIdx, req.Kind(), uint64(len(targets)), reqBytes*uint64(len(targets)))
	default:
		// One transmission reaches every destination; the payload goes
		// over the wire once.
		n.countRequest(opIdx, req.Kind(), 1, reqBytes)
	}
	// rec, when the operation is attributed (obs critical path), wants
	// per-destination round trips and the straggler wait — facts only
	// this fan-out can see. Durations come from the recorder's injected
	// clock, never the wall clock, so deterministic harnesses stay
	// deterministic.
	rec := protocol.CtxPhases(ctx)
	if len(targets) == 1 {
		// Nothing to fan out; skip the goroutine machinery.
		var t0 int64
		if rec != nil {
			t0 = rec.Now()
		}
		results[targets[0]] = n.deliverOne(ctx, from, targets[0], req, countReplies, opIdx)
		if rec != nil {
			rec.RecordPeerRTT(targets[0], rec.Now()-t0)
		}
		return results
	}
	// Fan out: each destination's round trip proceeds concurrently, so a
	// quorum collection costs one round-trip time, not one per site.
	var (
		wg   sync.WaitGroup
		rm   sync.Mutex
		durs []int64
	)
	if rec != nil {
		durs = make([]int64, len(targets))
	}
	for i, to := range targets {
		wg.Add(1)
		go func(i int, to protocol.SiteID) {
			defer wg.Done()
			var t0 int64
			if rec != nil {
				t0 = rec.Now()
			}
			res := n.deliverOne(ctx, from, to, req, countReplies, opIdx)
			rm.Lock()
			results[to] = res
			if rec != nil {
				durs[i] = rec.Now() - t0
			}
			rm.Unlock()
		}(i, to)
	}
	wg.Wait()
	if rec != nil {
		for i, to := range targets {
			rec.RecordPeerRTT(to, durs[i])
		}
		rec.RecordPhase(protocol.PhaseStraggler, stragglerWait(durs))
	}
	return results
}

// stragglerWait is the marginal cost of the slowest fan-out member:
// how much later it finished than the second-slowest destination. The
// coordinator waits for every reply, so this is exactly the wall time
// a one-member-smaller quorum would have saved.
func stragglerWait(durs []int64) int64 {
	if len(durs) < 2 {
		return 0
	}
	max, second := int64(-1), int64(-1)
	for _, d := range durs {
		switch {
		case d > max:
			second, max = max, d
		case d > second:
			second = d
		}
	}
	return max - second
}

// deliverOne performs the round trip to a single destination.
func (n *Network) deliverOne(ctx context.Context, from, to protocol.SiteID, req protocol.Request, countReply bool, opIdx int) protocol.Result {
	h, err := n.route(from, to)
	if err != nil {
		return protocol.Result{Err: err}
	}
	deliver, ferr := n.applyFault(from, to, req)
	if !deliver {
		return protocol.Result{Err: ferr}
	}
	if err := n.sleepLatency(ctx); err != nil {
		return protocol.Result{Err: err}
	}
	resp, err := h.Handle(ctx, from, req)
	if ferr != nil {
		return protocol.Result{Err: ferr}
	}
	if err != nil {
		return protocol.Result{Err: err}
	}
	if countReply {
		n.countReply(opIdx, resp)
	}
	return protocol.Result{Resp: resp}
}
