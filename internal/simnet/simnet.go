// Package simnet is an in-process network connecting replica sites.
//
// It provides the communication model of the paper (§2, §5): reliable
// message delivery, no spontaneous partitions (partitions can be injected
// explicitly for tests of the voting scheme), fail-stop sites that simply
// do not answer, and — crucially — exact accounting of *high-level
// transmissions* in both network flavours analysed in §5:
//
//   - Multicast: one transmission reaches any number of destinations;
//     each individually addressed reply is one transmission.
//   - Unique addressing: one transmission per destination, whether or not
//     the destination is up (the sender cannot know).
//
// The accounting deliberately mirrors the paper's conventions: low-level
// acknowledgements guaranteed by the reliable-delivery assumption are not
// counted (a naive available copy write is exactly one transmission), and
// a lazy block fetch during a voting read costs one transmission — only
// the block transfer itself is charged (§5.1: "at most U_V+1 if the local
// version is not up to date").
package simnet

import (
	"context"
	"fmt"
	"sync"

	"relidev/internal/protocol"
)

// Mode selects the §5 network flavour.
type Mode int

// Network modes.
const (
	// Multicast models §5.1: a single transmission may be received by
	// several sites.
	Multicast Mode = iota + 1
	// Unicast models §5.2: transmissions are addressed to an individual
	// site, so a logical broadcast costs one transmission per destination.
	Unicast
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Multicast:
		return "multicast"
	case Unicast:
		return "unicast"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Stats counts high-level transmissions as defined in §5, plus the
// byte-level alternative metric §5 mentions ("it is possible to instead
// focus on the sizes of the messages").
type Stats struct {
	// Transmissions is the total number of high-level transmissions.
	Transmissions uint64
	// Requests counts transmissions that carried a request.
	Requests uint64
	// Replies counts transmissions that carried a reply.
	Replies uint64
	// Bytes is the total estimated wire volume of all transmissions. A
	// multicast transmission's payload is charged once regardless of how
	// many sites receive it; unique addressing charges per destination.
	Bytes uint64
	// ByKind breaks down request transmissions by request kind.
	ByKind map[string]uint64
}

func (s *Stats) clone() Stats {
	out := *s
	out.ByKind = make(map[string]uint64, len(s.ByKind))
	for k, v := range s.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Network connects up to protocol.MaxSites sites. The zero value is not
// usable; use New.
type Network struct {
	mu        sync.Mutex
	mode      Mode
	handlers  map[protocol.SiteID]protocol.Handler
	up        map[protocol.SiteID]bool
	partition map[protocol.SiteID]int
	stats     Stats
}

var _ protocol.Transport = (*Network)(nil)

// New returns an empty network in the given mode.
func New(mode Mode) *Network {
	return &Network{
		mode:      mode,
		handlers:  make(map[protocol.SiteID]protocol.Handler),
		up:        make(map[protocol.SiteID]bool),
		partition: make(map[protocol.SiteID]int),
		stats:     Stats{ByKind: make(map[string]uint64)},
	}
}

// Mode returns the network flavour.
func (n *Network) Mode() Mode {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mode
}

// SetMode switches the network flavour. Tests use this to compare §5.1
// and §5.2 accounting over identical protocol runs.
func (n *Network) SetMode(m Mode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mode = m
}

// Attach registers the handler serving site id and marks the site up.
func (n *Network) Attach(id protocol.SiteID, h protocol.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
	n.up[id] = true
}

// SetUp marks a site's process up or down. A down site neither receives
// requests nor produces replies (fail-stop).
func (n *Network) SetUp(id protocol.SiteID, up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up[id] = up
}

// Up reports whether the site's process is running.
func (n *Network) Up(id protocol.SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up[id]
}

// SetPartition places a site in a partition group. Sites in different
// groups cannot exchange messages. The default group is 0. This exists
// only to demonstrate the §6 caveat that available copy requires a
// partition-free network; no production path creates partitions.
func (n *Network) SetPartition(id protocol.SiteID, group int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition[id] = group
}

// HealPartitions returns every site to partition group 0.
func (n *Network) HealPartitions() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.partition {
		n.partition[id] = 0
	}
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats.clone()
}

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{ByKind: make(map[string]uint64)}
}

// route returns the handler for `to` if it is up and reachable from
// `from`, without holding the lock during the handler call.
func (n *Network) route(from, to protocol.SiteID) (protocol.Handler, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up[to] {
		return nil, fmt.Errorf("%v -> %v: %w", from, to, protocol.ErrSiteDown)
	}
	if n.partition[from] != n.partition[to] {
		return nil, fmt.Errorf("%v -> %v: %w", from, to, protocol.ErrSiteUnreachable)
	}
	h, ok := n.handlers[to]
	if !ok {
		return nil, fmt.Errorf("%v -> %v: %w", from, to, protocol.ErrSiteDown)
	}
	return h, nil
}

func (n *Network) countRequest(kind string, transmissions, bytes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Transmissions += transmissions
	n.stats.Requests += transmissions
	n.stats.Bytes += bytes
	n.stats.ByKind[kind] += transmissions
}

func (n *Network) countReply(resp protocol.Response) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Transmissions++
	n.stats.Replies++
	n.stats.Bytes += uint64(protocol.WireSize(resp))
}

// Call sends a request to one site and waits for the response. It is
// charged as two transmissions: the request and the response (this is how
// §5.1 counts the recovery version-vector exchange). A site calling
// itself is free: local operations generate no network traffic.
func (n *Network) Call(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if from == to {
		h, err := n.route(from, to)
		if err != nil {
			return nil, err
		}
		return h.Handle(from, req)
	}
	h, err := n.route(from, to)
	if err != nil {
		return nil, err
	}
	n.countRequest(req.Kind(), 1, uint64(protocol.WireSize(req)))
	resp, err := h.Handle(from, req)
	if err != nil {
		return nil, err
	}
	n.countReply(resp)
	return resp, nil
}

// Fetch pulls data from one site and is charged as a single transmission:
// the block transfer itself. The request is piggybacked on state the
// destination already returned during quorum collection (§5.1 charges a
// voting read repair exactly one extra message).
func (n *Network) Fetch(ctx context.Context, from, to protocol.SiteID, req protocol.Request) (protocol.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if from == to {
		h, err := n.route(from, to)
		if err != nil {
			return nil, err
		}
		return h.Handle(from, req)
	}
	h, err := n.route(from, to)
	if err != nil {
		return nil, err
	}
	resp, err := h.Handle(from, req)
	if err != nil {
		return nil, err
	}
	n.countReply(resp)
	return resp, nil
}

// Broadcast sends a request to every site in dests and collects the
// per-site results. Charged as one transmission in multicast mode or one
// per destination in unicast mode, plus one transmission per reply
// received. The sender itself is never a destination; callers pass the
// remote sites.
func (n *Network) Broadcast(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	results := n.deliver(ctx, from, dests, req, true)
	return results
}

// Notify sends a request to every site in dests without charging for
// replies: the reliable-delivery assumption stands in for per-site
// acknowledgements (§5.1: a naive available copy write is one message;
// the voting block update after quorum collection is likewise one).
// Handler errors are still reported to the caller for correctness.
func (n *Network) Notify(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request) map[protocol.SiteID]protocol.Result {
	return n.deliver(ctx, from, dests, req, false)
}

func (n *Network) deliver(ctx context.Context, from protocol.SiteID, dests []protocol.SiteID, req protocol.Request, countReplies bool) map[protocol.SiteID]protocol.Result {
	results := make(map[protocol.SiteID]protocol.Result, len(dests))
	if err := ctx.Err(); err != nil {
		for _, to := range dests {
			results[to] = protocol.Result{Err: err}
		}
		return results
	}
	if len(dests) == 0 {
		return results
	}
	mode := n.Mode()
	reqBytes := uint64(protocol.WireSize(req))
	switch mode {
	case Unicast:
		n.countRequest(req.Kind(), uint64(len(dests)), reqBytes*uint64(len(dests)))
	default:
		// One transmission reaches every destination; the payload goes
		// over the wire once.
		n.countRequest(req.Kind(), 1, reqBytes)
	}
	for _, to := range dests {
		if to == from {
			continue
		}
		h, err := n.route(from, to)
		if err != nil {
			results[to] = protocol.Result{Err: err}
			continue
		}
		resp, err := h.Handle(from, req)
		if err != nil {
			results[to] = protocol.Result{Err: err}
			continue
		}
		results[to] = protocol.Result{Resp: resp}
		if countReplies {
			n.countReply(resp)
		}
	}
	return results
}
