package store

import (
	"sync"

	"relidev/internal/block"
)

// MemStore is an in-memory Store. It is the storage used by simulations,
// tests and the in-process cluster; it still models *stable* storage —
// the simulated fail-stop crash halts the site process but deliberately
// leaves the MemStore contents intact, matching the paper's failure model.
type MemStore struct {
	mu       sync.RWMutex
	geom     block.Geometry
	data     []byte // NumBlocks contiguous blocks
	versions block.Vector
	meta     []byte
	closed   bool
}

var _ Store = (*MemStore)(nil)

// NewMem returns an all-zero MemStore with the given geometry.
func NewMem(geom block.Geometry) (*MemStore, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &MemStore{
		geom:     geom,
		data:     make([]byte, geom.Size()),
		versions: block.NewVector(geom.NumBlocks),
	}, nil
}

// Geometry returns the device shape.
func (m *MemStore) Geometry() block.Geometry { return m.geom }

// Read returns a copy of block idx and its version.
func (m *MemStore) Read(idx block.Index) ([]byte, block.Version, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, 0, ErrClosed
	}
	if err := checkAccess(m.geom, idx); err != nil {
		return nil, 0, err
	}
	out := make([]byte, m.geom.BlockSize)
	copy(out, m.slice(idx))
	return out, m.versions[idx], nil
}

// Write replaces block idx with data at version ver.
func (m *MemStore) Write(idx block.Index, data []byte, ver block.Version) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if err := checkWrite(m.geom, idx, data); err != nil {
		return err
	}
	copy(m.slice(idx), data)
	m.versions[idx] = ver
	return nil
}

// Version returns the version of block idx.
func (m *MemStore) Version(idx block.Index) (block.Version, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, ErrClosed
	}
	if err := checkAccess(m.geom, idx); err != nil {
		return 0, err
	}
	return m.versions[idx], nil
}

// Vector returns a copy of the full version vector.
func (m *MemStore) Vector() block.Vector {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.versions.Clone()
}

// LoadMeta returns a copy of the metadata area.
func (m *MemStore) LoadMeta() ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.meta == nil {
		return nil, nil
	}
	out := make([]byte, len(m.meta))
	copy(out, m.meta)
	return out, nil
}

// SaveMeta replaces the metadata area.
func (m *MemStore) SaveMeta(meta []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.meta = make([]byte, len(meta))
	copy(m.meta, meta)
	return nil
}

// Close marks the store closed.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// slice returns the in-place storage for block idx. Callers hold m.mu.
func (m *MemStore) slice(idx block.Index) []byte {
	off := int64(idx) * int64(m.geom.BlockSize)
	return m.data[off : off+int64(m.geom.BlockSize)]
}
