package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"relidev/internal/block"
)

// smallSegs rotates early so a handful of writes exercises sealing,
// directory syncs, and dead-segment collection.
func smallSegs(t *testing.T, g block.Geometry) (*SegStore, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "segs")
	s, err := CreateSeg(dir, g, WithMaxSegmentBytes(512))
	if err != nil {
		t.Fatalf("CreateSeg: %v", err)
	}
	return s, dir
}

func TestSegStorePersistsAcrossReopen(t *testing.T) {
	s, dir := smallSegs(t, testGeom)
	for i := 0; i < 40; i++ {
		idx := block.Index(i % testGeom.NumBlocks)
		if err := s.Write(idx, fill(byte(i), testGeom.BlockSize), block.Version(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveMeta([]byte("meta!")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSeg(dir)
	if err != nil {
		t.Fatalf("OpenSeg: %v", err)
	}
	defer re.Close()
	if re.Geometry() != testGeom {
		t.Fatalf("reopened geometry = %+v, want %+v", re.Geometry(), testGeom)
	}
	for i := 40 - testGeom.NumBlocks; i < 40; i++ {
		idx := block.Index(i % testGeom.NumBlocks)
		data, ver, err := re.Read(idx)
		if err != nil || ver != block.Version(i) || !bytes.Equal(data, fill(byte(i), testGeom.BlockSize)) {
			t.Fatalf("block %d after reopen: ver %v err %v", idx, ver, err)
		}
	}
	meta, err := re.LoadMeta()
	if err != nil || string(meta) != "meta!" {
		t.Fatalf("meta after reopen = %q, %v", meta, err)
	}

	// Writes must keep working in the reopened store (the active
	// segment is appendable again).
	if err := re.Write(0, fill(0xEE, testGeom.BlockSize), 99); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
	if _, ver, _ := re.Read(0); ver != 99 {
		t.Fatalf("version after reopen write = %v, want 99", ver)
	}
}

func TestSegStoreRotationCollectsDeadSegments(t *testing.T) {
	s, dir := smallSegs(t, testGeom)
	defer s.Close()
	// Hammer a single block: every rotation strands a segment full of
	// superseded records, which the next rotation must delete.
	for i := 0; i < 200; i++ {
		if err := s.Write(3, fill(byte(i), testGeom.BlockSize), block.Version(i)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 3 {
		t.Fatalf("%d segments survive a single-block workload, want <= 3 (dead segments not collected)", len(names))
	}
}

// TestSegStoreCrashRecovery simulates a torn append: the tail of the
// active segment is cut mid-record, as a crash during write would
// leave it. Reopen must truncate the tail and recover every record
// before it.
func TestSegStoreCrashRecovery(t *testing.T) {
	s, dir := smallSegs(t, testGeom)
	for i := 0; i < 10; i++ {
		if err := s.Write(block.Index(i), fill(byte(i+1), testGeom.BlockSize), block.Version(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 7 bytes off the newest segment.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, names[len(names)-1])
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSeg(dir)
	if err != nil {
		t.Fatalf("OpenSeg after torn tail: %v", err)
	}
	defer re.Close()
	// The torn record is gone; every earlier record survives. The torn
	// write was never acked as durable (no Sync covered it), so losing
	// it is the contract, not data loss.
	sawTorn := 0
	for i := 0; i < 10; i++ {
		data, ver, err := re.Read(block.Index(i))
		if err != nil {
			t.Fatal(err)
		}
		if ver == 0 {
			sawTorn++
			continue
		}
		if ver != block.Version(i+1) || !bytes.Equal(data, fill(byte(i+1), testGeom.BlockSize)) {
			t.Fatalf("block %d after recovery: ver %v", i, ver)
		}
	}
	if sawTorn > 1 {
		t.Fatalf("%d blocks lost, a torn tail can only lose the final record", sawTorn)
	}

	// Recovery must leave the store writable and re-reopenable.
	if err := re.Write(2, fill(0xAA, testGeom.BlockSize), 50); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenSeg(dir)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer again.Close()
	if _, ver, _ := again.Read(2); ver != 50 {
		t.Fatalf("post-recovery write lost: ver = %v, want 50", ver)
	}
}

func TestSegStoreCrashRecoveryChecksumTail(t *testing.T) {
	s, dir := smallSegs(t, testGeom)
	if err := s.Write(0, fill(1, testGeom.BlockSize), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, fill(2, testGeom.BlockSize), 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the final record: the frame is intact
	// but the CRC no longer matches, as a partial sector write would
	// leave it.
	names, _ := segmentNames(dir)
	last := filepath.Join(dir, names[len(names)-1])
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(last, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSeg(dir)
	if err != nil {
		t.Fatalf("OpenSeg after checksum damage: %v", err)
	}
	defer re.Close()
	if _, ver, _ := re.Read(0); ver != 1 {
		t.Fatalf("intact record lost: block 0 ver = %v, want 1", ver)
	}
	if _, ver, _ := re.Read(1); ver != 0 {
		t.Fatalf("damaged record survived: block 1 ver = %v, want 0", ver)
	}
}

func TestSegStoreRejectsMidLogCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	s, err := CreateSeg(dir, testGeom, WithMaxSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	// Enough writes to span several segments.
	for i := 0; i < 30; i++ {
		if err := s.Write(block.Index(i%testGeom.NumBlocks), fill(byte(i), testGeom.BlockSize), block.Version(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segmentNames(dir)
	if len(names) < 2 {
		t.Fatalf("workload produced %d segments, need >= 2", len(names))
	}
	// Damage a record in the FIRST segment: that is corruption, not a
	// torn tail, and replay must refuse rather than silently drop
	// history.
	first := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderSize+recHeaderSize] ^= 0xFF
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeg(dir); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("OpenSeg on mid-log corruption = %v, want ErrCorruptSegment", err)
	}
}

func TestSegStoreRecordFraming(t *testing.T) {
	// Pin the on-disk record layout: crc[4] type[1] idx[4] ver[8]
	// len[4] payload. A layout change breaks every existing store.
	s, dir := smallSegs(t, testGeom)
	payload := fill(0x5A, testGeom.BlockSize)
	if err := s.Write(7, payload, 9); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	rec := raw[segHeaderSize:]
	if len(rec) != recHeaderSize+testGeom.BlockSize {
		t.Fatalf("record is %d bytes, want %d", len(rec), recHeaderSize+testGeom.BlockSize)
	}
	if got := crc32.ChecksumIEEE(rec[4:]); got != binary.LittleEndian.Uint32(rec[:4]) {
		t.Fatal("stored CRC does not cover type..payload")
	}
	if rec[4] != recBlock {
		t.Fatalf("record type = %d, want %d", rec[4], recBlock)
	}
	if got := binary.LittleEndian.Uint32(rec[5:]); got != 7 {
		t.Fatalf("record idx = %d, want 7", got)
	}
	if got := binary.LittleEndian.Uint64(rec[9:]); got != 9 {
		t.Fatalf("record ver = %d, want 9", got)
	}
	if got := binary.LittleEndian.Uint32(rec[17:]); got != uint32(testGeom.BlockSize) {
		t.Fatalf("record len = %d, want %d", got, testGeom.BlockSize)
	}
	if !bytes.Equal(rec[recHeaderSize:], payload) {
		t.Fatal("record payload differs from written block")
	}
}

func TestOpenSegRejectsEmptyAndForeignDirs(t *testing.T) {
	if _, err := OpenSeg(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("OpenSeg accepted a missing directory")
	}
	empty := t.TempDir()
	if _, err := OpenSeg(empty); err == nil {
		t.Fatal("OpenSeg accepted an empty directory")
	}
	junk := t.TempDir()
	if err := os.WriteFile(filepath.Join(junk, segmentName(0)), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeg(junk); err == nil {
		t.Fatal("OpenSeg accepted a garbage segment file")
	}
}

func TestCreateSegRefusesNonEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	s, err := CreateSeg(dir, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := CreateSeg(dir, testGeom); err == nil {
		t.Fatal("CreateSeg clobbered an existing store")
	}
}

func TestSegStoreManySegmentsSortStable(t *testing.T) {
	// Rotation past ten segments exercises name ordering (a naive
	// lexical sort of unpadded numbers would replay out of order).
	dir := filepath.Join(t.TempDir(), "segs")
	s, err := CreateSeg(dir, testGeom, WithMaxSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		idx := block.Index(i % 4) // few blocks, so most segments die
		if err := s.Write(idx, fill(byte(i), testGeom.BlockSize), block.Version(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSeg(dir)
	if err != nil {
		t.Fatalf("OpenSeg: %v", err)
	}
	defer re.Close()
	for i := 56; i < 60; i++ {
		idx := block.Index(i % 4)
		data, ver, err := re.Read(idx)
		if err != nil || ver != block.Version(i+1) {
			t.Fatalf("block %d = ver %v err %v, want %d", idx, ver, err, i+1)
		}
		if !bytes.Equal(data, fill(byte(i), testGeom.BlockSize)) {
			t.Fatalf("block %d data mismatch", idx)
		}
	}
}

func ExampleSegStore() {
	dir, _ := os.MkdirTemp("", "segstore")
	defer os.RemoveAll(dir)
	g := block.Geometry{BlockSize: 16, NumBlocks: 4}
	s, _ := CreateSeg(filepath.Join(dir, "dev"), g)
	_ = s.Write(1, []byte("0123456789abcdef"), 1)
	_ = s.Sync()
	_ = s.Close()
	re, _ := OpenSeg(filepath.Join(dir, "dev"))
	defer re.Close()
	data, ver, _ := re.Read(1)
	fmt.Printf("ver %d: %s\n", ver, data)
	// Output: ver 1: 0123456789abcdef
}
