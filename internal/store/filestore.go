package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"relidev/internal/block"
)

// FileStore layout (little endian):
//
//	header   : magic[8] blockSize[4] numBlocks[4] metaCap[4] metaLen[4]
//	meta     : metaCap bytes
//	versions : numBlocks * 8 bytes
//	data     : numBlocks * blockSize bytes
const (
	fileMagic      = "RELIDEV1"
	fileHeaderSize = 8 + 4 + 4 + 4 + 4
	defaultMetaCap = 4096
)

// ErrBadImage is returned when a backing file is not a valid store image.
var ErrBadImage = errors.New("store: not a relidev store image")

// FileStore is a Store backed by a single ordinary file, giving a replica
// server process genuinely durable state: version numbers and scheme
// metadata are persisted next to the data so that a restarted process
// recovers exactly the state it crashed with.
type FileStore struct {
	mu     sync.Mutex
	f      *os.File
	geom   block.Geometry
	closed bool
}

var _ Store = (*FileStore)(nil)

// CreateFile creates (or truncates) path as an all-zero store image.
func CreateFile(path string, geom block.Geometry) (*FileStore, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("create store image: %w", err)
	}
	hdr := make([]byte, fileHeaderSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(geom.BlockSize))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(geom.NumBlocks))
	binary.LittleEndian.PutUint32(hdr[16:], defaultMetaCap)
	binary.LittleEndian.PutUint32(hdr[20:], 0)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("write store header: %w", err)
	}
	total := int64(fileHeaderSize) + defaultMetaCap + int64(geom.NumBlocks)*8 + geom.Size()
	if err := f.Truncate(total); err != nil {
		f.Close()
		return nil, fmt.Errorf("size store image: %w", err)
	}
	// Syncing the file alone is not enough for a freshly-created image:
	// the new directory entry must be durable too, or a crash right
	// after creation leaves a synced file that no name points at.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sync store image: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, geom: geom}, nil
}

// OpenFile opens an existing store image.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("open store image: %w", err)
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fileHeaderSize), hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("read store header: %w", err)
	}
	if string(hdr[:8]) != fileMagic {
		f.Close()
		return nil, ErrBadImage
	}
	geom := block.Geometry{
		BlockSize: int(binary.LittleEndian.Uint32(hdr[8:])),
		NumBlocks: int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	if err := geom.Validate(); err != nil {
		f.Close()
		return nil, fmt.Errorf("open store image: %w", err)
	}
	return &FileStore{f: f, geom: geom}, nil
}

// Geometry returns the device shape.
func (s *FileStore) Geometry() block.Geometry { return s.geom }

func (s *FileStore) versionOffset(idx block.Index) int64 {
	return fileHeaderSize + defaultMetaCap + int64(idx)*8
}

func (s *FileStore) dataOffset(idx block.Index) int64 {
	return fileHeaderSize + defaultMetaCap + int64(s.geom.NumBlocks)*8 + int64(idx)*int64(s.geom.BlockSize)
}

// Read returns block idx and its version.
func (s *FileStore) Read(idx block.Index) ([]byte, block.Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	if err := checkAccess(s.geom, idx); err != nil {
		return nil, 0, err
	}
	buf := make([]byte, s.geom.BlockSize)
	if _, err := s.f.ReadAt(buf, s.dataOffset(idx)); err != nil {
		return nil, 0, fmt.Errorf("read block %d: %w", idx, err)
	}
	ver, err := s.versionLocked(idx)
	if err != nil {
		return nil, 0, err
	}
	return buf, ver, nil
}

// Write replaces block idx with data at version ver.
func (s *FileStore) Write(idx block.Index, data []byte, ver block.Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := checkWrite(s.geom, idx, data); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(data, s.dataOffset(idx)); err != nil {
		return fmt.Errorf("write block %d: %w", idx, err)
	}
	var vb [8]byte
	binary.LittleEndian.PutUint64(vb[:], uint64(ver))
	if _, err := s.f.WriteAt(vb[:], s.versionOffset(idx)); err != nil {
		return fmt.Errorf("write version of block %d: %w", idx, err)
	}
	return nil
}

// Version returns the version of block idx.
func (s *FileStore) Version(idx block.Index) (block.Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if err := checkAccess(s.geom, idx); err != nil {
		return 0, err
	}
	return s.versionLocked(idx)
}

func (s *FileStore) versionLocked(idx block.Index) (block.Version, error) {
	var vb [8]byte
	if _, err := s.f.ReadAt(vb[:], s.versionOffset(idx)); err != nil {
		return 0, fmt.Errorf("read version of block %d: %w", idx, err)
	}
	return block.Version(binary.LittleEndian.Uint64(vb[:])), nil
}

// Vector returns the full version vector.
func (s *FileStore) Vector() block.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := block.NewVector(s.geom.NumBlocks)
	if s.closed {
		return v
	}
	raw := make([]byte, 8*s.geom.NumBlocks)
	if _, err := s.f.ReadAt(raw, fileHeaderSize+defaultMetaCap); err != nil {
		return v
	}
	for i := range v {
		v[i] = block.Version(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return v
}

// LoadMeta returns the metadata area contents.
func (s *FileStore) LoadMeta() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := s.f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("read store header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[20:])
	if n == 0 {
		return nil, nil
	}
	if n > defaultMetaCap {
		return nil, ErrBadImage
	}
	meta := make([]byte, n)
	if _, err := s.f.ReadAt(meta, fileHeaderSize); err != nil {
		return nil, fmt.Errorf("read store meta: %w", err)
	}
	return meta, nil
}

// SaveMeta replaces the metadata area.
func (s *FileStore) SaveMeta(meta []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(meta) > defaultMetaCap {
		return fmt.Errorf("store: metadata %d bytes exceeds capacity %d", len(meta), defaultMetaCap)
	}
	if len(meta) > 0 {
		if _, err := s.f.WriteAt(meta, fileHeaderSize); err != nil {
			return fmt.Errorf("write store meta: %w", err)
		}
	}
	var nb [4]byte
	binary.LittleEndian.PutUint32(nb[:], uint32(len(meta)))
	if _, err := s.f.WriteAt(nb[:], 20); err != nil {
		return fmt.Errorf("write store meta length: %w", err)
	}
	return nil
}

// Sync flushes the image to disk.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.f.Sync()
}

// Close closes the backing file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
