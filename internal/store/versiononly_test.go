package store

import (
	"errors"
	"testing"

	"relidev/internal/block"
)

func TestVersionOnlyValidation(t *testing.T) {
	if _, err := NewVersionOnly(block.Geometry{BlockSize: 0, NumBlocks: 4}); err == nil {
		t.Fatal("accepted invalid geometry")
	}
}

func TestVersionOnlySemantics(t *testing.T) {
	s, err := NewVersionOnly(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Writes record the version, discard the data.
	if err := s.Write(2, fill(0xAA, testGeom.BlockSize), 7); err != nil {
		t.Fatal(err)
	}
	ver, err := s.Version(2)
	if err != nil || ver != 7 {
		t.Fatalf("Version = %v, %v", ver, err)
	}
	data, ver, err := s.Read(2)
	if !errors.Is(err, ErrNoData) {
		t.Fatalf("Read = %v, want ErrNoData", err)
	}
	if data != nil {
		t.Fatal("Read returned data from a witness store")
	}
	if ver != 7 {
		t.Fatalf("Read version = %v, want 7 (still reported)", ver)
	}
	// Vector reflects writes.
	v := s.Vector()
	if v.Get(2) != 7 || v.Get(0) != 0 {
		t.Fatalf("Vector = %v", v)
	}
}

func TestVersionOnlyBoundsAndSize(t *testing.T) {
	s, _ := NewVersionOnly(testGeom)
	defer s.Close()
	if err := s.Write(99, fill(0, testGeom.BlockSize), 1); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := s.Write(0, []byte{1}, 1); err == nil {
		t.Fatal("short write accepted")
	}
	if _, _, err := s.Read(99); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := s.Version(99); err == nil {
		t.Fatal("out-of-range version accepted")
	}
}

func TestVersionOnlyMetaAndClose(t *testing.T) {
	s, _ := NewVersionOnly(testGeom)
	if m, err := s.LoadMeta(); err != nil || m != nil {
		t.Fatalf("fresh meta = %v, %v", m, err)
	}
	if err := s.SaveMeta([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := s.LoadMeta()
	if err != nil || len(m) != 2 {
		t.Fatalf("meta = %v, %v", m, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, fill(0, testGeom.BlockSize), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
	if _, _, err := s.Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close = %v", err)
	}
	if _, err := s.Version(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("version after close = %v", err)
	}
	if _, err := s.LoadMeta(); !errors.Is(err, ErrClosed) {
		t.Fatalf("meta after close = %v", err)
	}
	if err := s.SaveMeta(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("save meta after close = %v", err)
	}
}
