package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"relidev/internal/block"
)

var testGeom = block.Geometry{BlockSize: 64, NumBlocks: 16}

// openers builds each Store implementation against a fresh backing.
func openers(t *testing.T) map[string]func(t *testing.T, g block.Geometry) Store {
	t.Helper()
	return map[string]func(t *testing.T, g block.Geometry) Store{
		"mem": func(t *testing.T, g block.Geometry) Store {
			s, err := NewMem(g)
			if err != nil {
				t.Fatalf("NewMem: %v", err)
			}
			return s
		},
		"file": func(t *testing.T, g block.Geometry) Store {
			s, err := CreateFile(filepath.Join(t.TempDir(), "img"), g)
			if err != nil {
				t.Fatalf("CreateFile: %v", err)
			}
			return s
		},
		"segment": func(t *testing.T, g block.Geometry) Store {
			s, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), g)
			if err != nil {
				t.Fatalf("CreateSeg: %v", err)
			}
			return s
		},
		"batched-segment": func(t *testing.T, g block.Geometry) Store {
			s, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), g)
			if err != nil {
				t.Fatalf("CreateSeg: %v", err)
			}
			return NewBatcher(s, BatchPolicy{MaxBatch: 8})
		},
	}
}

func fill(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestStoreReadWriteRoundtrip(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()

			data := fill(0xAB, testGeom.BlockSize)
			if err := s.Write(3, data, 7); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, ver, err := s.Read(3)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("read data differs from written data")
			}
			if ver != 7 {
				t.Fatalf("version = %v, want 7", ver)
			}
			v, err := s.Version(3)
			if err != nil || v != 7 {
				t.Fatalf("Version = %v, %v; want 7, nil", v, err)
			}
		})
	}
}

func TestStoreFreshBlocksAreZero(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()
			data, ver, err := s.Read(0)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if ver != 0 {
				t.Fatalf("fresh version = %v, want 0", ver)
			}
			if !bytes.Equal(data, make([]byte, testGeom.BlockSize)) {
				t.Fatal("fresh block not zeroed")
			}
		})
	}
}

func TestStoreOutOfRange(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()
			if _, _, err := s.Read(block.Index(testGeom.NumBlocks)); err == nil {
				t.Fatal("Read out of range succeeded")
			}
			var oor *OutOfRangeError
			_, _, err := s.Read(99)
			if !errors.As(err, &oor) {
				t.Fatalf("error %v is not OutOfRangeError", err)
			}
			if err := s.Write(99, fill(1, testGeom.BlockSize), 1); !errors.As(err, &oor) {
				t.Fatalf("Write error %v is not OutOfRangeError", err)
			}
			if _, err := s.Version(99); !errors.As(err, &oor) {
				t.Fatalf("Version error %v is not OutOfRangeError", err)
			}
		})
	}
}

func TestStoreWrongPayloadSize(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()
			var se *SizeError
			if err := s.Write(0, []byte{1, 2, 3}, 1); !errors.As(err, &se) {
				t.Fatalf("short write error = %v, want SizeError", err)
			}
			if err := s.Write(0, fill(0, testGeom.BlockSize+1), 1); !errors.As(err, &se) {
				t.Fatalf("long write error = %v, want SizeError", err)
			}
		})
	}
}

func TestStoreVector(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()
			for i := 0; i < testGeom.NumBlocks; i++ {
				if err := s.Write(block.Index(i), fill(byte(i), testGeom.BlockSize), block.Version(i*2)); err != nil {
					t.Fatalf("Write %d: %v", i, err)
				}
			}
			v := s.Vector()
			for i := range v {
				if v[i] != block.Version(i*2) {
					t.Fatalf("Vector[%d] = %v, want %v", i, v[i], i*2)
				}
			}
		})
	}
}

func TestStoreMetaRoundtrip(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()
			m, err := s.LoadMeta()
			if err != nil {
				t.Fatalf("LoadMeta: %v", err)
			}
			if m != nil {
				t.Fatalf("fresh meta = %v, want nil", m)
			}
			if err := s.SaveMeta([]byte("hello")); err != nil {
				t.Fatalf("SaveMeta: %v", err)
			}
			m, err = s.LoadMeta()
			if err != nil || string(m) != "hello" {
				t.Fatalf("LoadMeta = %q, %v", m, err)
			}
			// Shrinking works too.
			if err := s.SaveMeta([]byte("x")); err != nil {
				t.Fatalf("SaveMeta shrink: %v", err)
			}
			m, _ = s.LoadMeta()
			if string(m) != "x" {
				t.Fatalf("LoadMeta after shrink = %q", m)
			}
		})
	}
}

func TestStoreClosed(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, _, err := s.Read(0); !errors.Is(err, ErrClosed) {
				t.Fatalf("Read after close = %v, want ErrClosed", err)
			}
			if err := s.Write(0, fill(0, testGeom.BlockSize), 1); !errors.Is(err, ErrClosed) {
				t.Fatalf("Write after close = %v, want ErrClosed", err)
			}
			if _, err := s.LoadMeta(); !errors.Is(err, ErrClosed) {
				t.Fatalf("LoadMeta after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestStoreReadReturnsCopy(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t, testGeom)
			defer s.Close()
			if err := s.Write(0, fill(5, testGeom.BlockSize), 1); err != nil {
				t.Fatal(err)
			}
			got, _, _ := s.Read(0)
			got[0] = 99
			again, _, _ := s.Read(0)
			if again[0] != 5 {
				t.Fatal("Read exposed internal storage")
			}
		})
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	s, err := CreateFile(path, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(4, fill(0xCD, testGeom.BlockSize), 11); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveMeta([]byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer re.Close()
	if re.Geometry() != testGeom {
		t.Fatalf("reopened geometry = %+v, want %+v", re.Geometry(), testGeom)
	}
	data, ver, err := re.Read(4)
	if err != nil || ver != 11 || !bytes.Equal(data, fill(0xCD, testGeom.BlockSize)) {
		t.Fatalf("reopened Read = ver %v err %v", ver, err)
	}
	meta, err := re.LoadMeta()
	if err != nil || !bytes.Equal(meta, []byte{9, 9}) {
		t.Fatalf("reopened meta = %v, %v", meta, err)
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("definitely not a store image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrBadImage) {
		// A too-short file yields a read error instead; both are fine as
		// long as opening fails.
		if err == nil {
			t.Fatal("OpenFile accepted garbage")
		}
	}
}

func TestFileStoreMetaTooLarge(t *testing.T) {
	s, err := CreateFile(filepath.Join(t.TempDir(), "img"), testGeom)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SaveMeta(make([]byte, defaultMetaCap+1)); err == nil {
		t.Fatal("SaveMeta accepted oversized metadata")
	}
}

// Property: for any sequence of writes, the last write to each block wins
// and the vector tracks the last version written.
func TestStoreLastWriteWins(t *testing.T) {
	type op struct {
		Idx  uint8
		Fill byte
		Ver  uint16
	}
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			if name == "file" && testing.Short() {
				t.Skip("file store property test skipped in -short")
			}
			f := func(ops []op) bool {
				s := open(t, testGeom)
				defer s.Close()
				last := make(map[block.Index]op)
				for _, o := range ops {
					idx := block.Index(int(o.Idx) % testGeom.NumBlocks)
					o.Idx = uint8(idx)
					if err := s.Write(idx, fill(o.Fill, testGeom.BlockSize), block.Version(o.Ver)); err != nil {
						return false
					}
					last[idx] = o
				}
				for idx, o := range last {
					data, ver, err := s.Read(idx)
					if err != nil || ver != block.Version(o.Ver) || !bytes.Equal(data, fill(o.Fill, testGeom.BlockSize)) {
						return false
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
