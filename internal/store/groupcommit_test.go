package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relidev/internal/block"
)

// fakeClock hands out timers that never fire on their own; the test
// fires them explicitly. This keeps batch boundaries deterministic —
// the same discipline detcheck enforces on the package itself.
type fakeClock struct {
	mu     sync.Mutex
	timers []*fakeTimer
}

type fakeTimer struct {
	ch chan time.Time
}

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t
}

func (c *fakeClock) fireAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.timers {
		select {
		case t.ch <- time.Time{}:
		default:
		}
	}
	c.timers = nil
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }
func (t *fakeTimer) Stop() bool          { return true }

// syncCountingStore wraps a Store+Syncer and counts Sync calls, so the
// tests can assert how many fsyncs a workload cost.
type syncCountingStore struct {
	Store
	syncs atomic.Int64
}

func (s *syncCountingStore) Sync() error {
	s.syncs.Add(1)
	return s.Store.(Syncer).Sync()
}

func TestBatcherCoalescesConcurrentWrites(t *testing.T) {
	seg, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), testGeom)
	if err != nil {
		t.Fatal(err)
	}
	counted := &syncCountingStore{Store: seg}
	var batches []int
	var batchMu sync.Mutex
	b := NewBatcher(counted, BatchPolicy{MaxBatch: 64},
		WithFlushObserver(func(n int) {
			batchMu.Lock()
			batches = append(batches, n)
			batchMu.Unlock()
		}))
	defer b.Close()

	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				idx := block.Index((w + i) % testGeom.NumBlocks)
				if err := b.Write(idx, fill(byte(w), testGeom.BlockSize), block.Version(w*100+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := int64(writers * 25)
	if got := counted.syncs.Load(); got >= total {
		t.Fatalf("%d syncs for %d writes: group commit coalesced nothing", got, total)
	}
	batchMu.Lock()
	defer batchMu.Unlock()
	var sum, max int
	for _, n := range batches {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum != int(total) {
		t.Fatalf("flush observer saw %d writes, want %d", sum, total)
	}
	if max < 2 {
		t.Fatalf("largest batch = %d, 16 concurrent writers never shared a flush", max)
	}
}

func TestBatcherMaxDelayHoldsForJoiners(t *testing.T) {
	seg, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), testGeom)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{}
	var batches []int
	var batchMu sync.Mutex
	flushed := make(chan struct{}, 16)
	b := NewBatcher(seg, BatchPolicy{MaxDelay: time.Second, MaxBatch: 64},
		WithBatchClock(clock),
		WithFlushObserver(func(n int) {
			batchMu.Lock()
			batches = append(batches, n)
			batchMu.Unlock()
			flushed <- struct{}{}
		}))
	defer b.Close()

	// Three writers join; the leader's timer has not fired, so nothing
	// flushes until the clock is driven.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Write(block.Index(i), fill(byte(i), testGeom.BlockSize), 1); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until the leader is parked on its timer with all three
	// writes in hand, then fire. Firing repeatedly is harmless: only a
	// timer that exists can go off.
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		clock.fireAll()
		select {
		case <-done:
			batchMu.Lock()
			n := len(batches)
			batchMu.Unlock()
			if n == 0 {
				t.Fatal("writers released without a flush")
			}
			return
		case <-deadline:
			t.Fatal("writers never released; MaxDelay flush did not happen")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestBatcherMaxBatchFlushesWithoutTimer(t *testing.T) {
	seg, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), testGeom)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{} // never fired: MaxBatch alone must release writers
	b := NewBatcher(seg, BatchPolicy{MaxDelay: time.Hour, MaxBatch: 1},
		WithBatchClock(clock))
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		errc <- b.Write(0, fill(1, testGeom.BlockSize), 1)
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MaxBatch=1 write waited on the timer")
	}
}

func TestBatcherWriteVisibleAfterReturn(t *testing.T) {
	mem, err := NewMem(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(mem, BatchPolicy{MaxBatch: 8})
	defer b.Close()
	data := fill(0x42, testGeom.BlockSize)
	if err := b.Write(5, data, 7); err != nil {
		t.Fatal(err)
	}
	got, ver, err := b.Read(5)
	if err != nil || ver != 7 || !bytes.Equal(got, data) {
		t.Fatalf("Read after batched Write = ver %v err %v", ver, err)
	}
	if err := b.SaveMeta([]byte("m")); err != nil {
		t.Fatal(err)
	}
	m, err := b.LoadMeta()
	if err != nil || string(m) != "m" {
		t.Fatalf("LoadMeta after batched SaveMeta = %q, %v", m, err)
	}
}

func TestBatcherCloseRejectsLateWrites(t *testing.T) {
	mem, _ := NewMem(testGeom)
	b := NewBatcher(mem, BatchPolicy{MaxBatch: 4})
	if err := b.Write(0, fill(1, testGeom.BlockSize), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0, fill(2, testGeom.BlockSize), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestBatcherFlushStats: the WithFlushStats observer sees every write
// exactly once with a well-formed phase breakdown — per-request queue
// waits measured from enqueue to flush start, an apply slice, and a
// sync slice (only for stores with a Syncer). The now-source is a
// counter, so every phase boundary is a strictly positive tick.
func TestBatcherFlushStats(t *testing.T) {
	seg, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), testGeom)
	if err != nil {
		t.Fatal(err)
	}
	var tick atomic.Int64
	now := func() int64 { return tick.Add(1) }
	var mu sync.Mutex
	var flushes []FlushStats
	b := NewBatcher(seg, BatchPolicy{MaxBatch: 8},
		WithFlushStats(func(s FlushStats) {
			mu.Lock()
			flushes = append(flushes, s)
			mu.Unlock()
		}, now))

	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Write(block.Index(w%testGeom.NumBlocks), fill(byte(w), testGeom.BlockSize), block.Version(w+1)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var writesSeen int
	for _, s := range flushes {
		writesSeen += s.Size
		if len(s.QueueWaitNs) != s.Size {
			t.Fatalf("flush reports %d queue waits for %d writes", len(s.QueueWaitNs), s.Size)
		}
		for i, qw := range s.QueueWaitNs {
			if qw <= 0 {
				t.Errorf("queue wait %d = %d, want > 0 (enqueue tick precedes flush tick)", i, qw)
			}
		}
		if s.ApplyNs <= 0 {
			t.Errorf("ApplyNs = %d, want > 0", s.ApplyNs)
		}
		if s.SyncNs <= 0 {
			t.Errorf("SyncNs = %d, want > 0 for a Syncer-backed store", s.SyncNs)
		}
	}
	if writesSeen != writers {
		t.Fatalf("flush stats covered %d writes, want %d", writesSeen, writers)
	}
}

// TestBatcherFlushStatsWithoutSyncer: a store with no Syncer reports a
// zero sync slice, and half-configured stats (nil fn or nil now) stay
// off entirely.
func TestBatcherFlushStatsWithoutSyncer(t *testing.T) {
	mem, err := NewMem(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	var tick atomic.Int64
	now := func() int64 { return tick.Add(1) }
	var got []FlushStats
	var mu sync.Mutex
	b := NewBatcher(mem, BatchPolicy{MaxBatch: 4},
		WithFlushStats(func(s FlushStats) { mu.Lock(); got = append(got, s); mu.Unlock() }, now))
	if err := b.Write(0, fill(1, testGeom.BlockSize), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(got) != 1 || got[0].SyncNs != 0 {
		t.Fatalf("flushes = %+v, want one flush with SyncNs 0", got)
	}
	mu.Unlock()

	mem2, err := NewMem(testGeom)
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBatcher(mem2, BatchPolicy{MaxBatch: 4}, WithFlushStats(nil, now))
	if err := b2.Write(0, fill(2, testGeom.BlockSize), 1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
}
