package store

import (
	"sync"
	"time"

	"relidev/internal/block"
)

// Syncer is the durability hook a Batcher amortises: SegStore and
// FileStore both implement it.
type Syncer interface {
	Sync() error
}

// A Clock creates timers. The flush policy must never read the wall
// clock directly (detcheck scopes this package): deterministic
// harnesses inject a fake so batch boundaries replay identically.
type Clock interface {
	NewTimer(d time.Duration) Timer
}

// A Timer is the subset of *time.Timer the batcher needs, as an
// interface so fakes can drive it.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

type realClock struct{}

func (realClock) NewTimer(d time.Duration) Timer {
	//relidev:allow nondeterminism: default clock for live stores; deterministic harnesses inject a fake Clock
	return realTimer{t: time.NewTimer(d)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

// BatchPolicy tunes group commit. The fsync cost model (PAPERS.md,
// "Characterizing Synchronous Writes in Stable Memory Devices") makes
// the trade explicit: one fsync costs the same whether it covers one
// record or fifty, so waiting MaxDelay for joiners converts per-write
// sync cost into per-batch cost at the price of added latency.
type BatchPolicy struct {
	// MaxDelay is how long the flush leader waits for more writers to
	// join its batch. Zero means opportunistic batching: the leader
	// takes whatever is already queued and flushes immediately, adding
	// no latency while still coalescing under load.
	MaxDelay time.Duration

	// MaxBatch flushes the batch as soon as it holds this many writes,
	// regardless of MaxDelay. Values below 1 are treated as 1.
	MaxBatch int
}

// batchReq is one writer waiting for its record to be applied and
// made durable. enq is the enqueue timestamp from the injected
// now-source (zero when flush stats are off).
type batchReq struct {
	idx  block.Index
	data []byte
	ver  block.Version
	meta bool
	enq  int64
	done chan error
}

// FlushStats is one flushed batch's critical-path breakdown, reported
// to the WithFlushStats observer: how long each request queued before
// the flush started, and how the flush itself split between applying
// records and the single durability sync. All durations come from the
// injected now-source, so deterministic harnesses replay them.
type FlushStats struct {
	// Size is the batch occupancy (writes sharing this flush).
	Size int
	// QueueWaitNs holds each request's wait from enqueue to flush
	// start, in batch order.
	QueueWaitNs []int64
	// ApplyNs is the time spent writing the batch into the store.
	ApplyNs int64
	// SyncNs is the time spent in the store's Sync (zero when the store
	// has no Syncer).
	SyncNs int64
}

// Batcher is a Store wrapper that coalesces concurrent writes into a
// single apply+fsync (group commit). Each Write blocks until its
// record is durable, so callers keep the same completion semantics as
// an unbatched synchronous store; the saving is that N concurrent
// writers share one fsync instead of paying for N.
type Batcher struct {
	st     Store
	syncer Syncer
	policy BatchPolicy
	clock  Clock

	// onFlush, when set, observes each batch's occupancy; core wires
	// this to the obs gauge so batch sizes are visible live.
	onFlush func(batchSize int)

	// onStats and now, when set together, observe each batch's phase
	// breakdown (queue wait / apply / fsync); the wiring layer feeds
	// the relidev_store_phase_ns histograms from it.
	onStats func(FlushStats)
	now     func() int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
	reqs   chan *batchReq
}

var _ Store = (*Batcher)(nil)

// BatchOption tunes a Batcher.
type BatchOption func(*Batcher)

// WithBatchClock injects the timer source used for MaxDelay waits.
func WithBatchClock(c Clock) BatchOption {
	return func(b *Batcher) { b.clock = c }
}

// WithFlushObserver registers a callback invoked with each flushed
// batch's size.
func WithFlushObserver(fn func(batchSize int)) BatchOption {
	return func(b *Batcher) { b.onFlush = fn }
}

// WithFlushStats registers a phase-breakdown observer for every flush,
// timed by now (nanoseconds; the caller injects its clock so the
// batcher itself never reads the wall clock). Both must be non-nil for
// stats to be collected.
func WithFlushStats(fn func(FlushStats), now func() int64) BatchOption {
	return func(b *Batcher) {
		if fn != nil && now != nil {
			b.onStats, b.now = fn, now
		}
	}
}

// NewBatcher wraps st with group commit under the given policy. If st
// implements Syncer each batch ends with one Sync call; otherwise the
// batch boundary only bounds write latency.
func NewBatcher(st Store, policy BatchPolicy, opts ...BatchOption) *Batcher {
	if policy.MaxBatch < 1 {
		policy.MaxBatch = 1
	}
	b := &Batcher{
		st:     st,
		policy: policy,
		clock:  realClock{},
		reqs:   make(chan *batchReq, 4*policy.MaxBatch),
	}
	if sy, ok := st.(Syncer); ok {
		b.syncer = sy
	}
	for _, opt := range opts {
		opt(b)
	}
	b.wg.Add(1)
	go b.flushLoop()
	return b
}

// Geometry returns the device shape.
func (b *Batcher) Geometry() block.Geometry { return b.st.Geometry() }

// Read passes through to the underlying store.
func (b *Batcher) Read(idx block.Index) ([]byte, block.Version, error) { return b.st.Read(idx) }

// Version passes through to the underlying store.
func (b *Batcher) Version(idx block.Index) (block.Version, error) { return b.st.Version(idx) }

// Vector passes through to the underlying store.
func (b *Batcher) Vector() block.Vector { return b.st.Vector() }

// LoadMeta passes through to the underlying store.
func (b *Batcher) LoadMeta() ([]byte, error) { return b.st.LoadMeta() }

// Write enqueues the record and blocks until the batch holding it has
// been applied and synced.
func (b *Batcher) Write(idx block.Index, data []byte, ver block.Version) error {
	if err := checkWrite(b.st.Geometry(), idx, data); err != nil {
		return err
	}
	req := &batchReq{idx: idx, data: data, ver: ver, done: make(chan error, 1)}
	if b.now != nil {
		req.enq = b.now()
	}
	return b.submit(req)
}

// SaveMeta rides the same batch queue so metadata updates share the
// group fsync too.
func (b *Batcher) SaveMeta(meta []byte) error {
	req := &batchReq{data: meta, meta: true, done: make(chan error, 1)}
	if b.now != nil {
		req.enq = b.now()
	}
	return b.submit(req)
}

func (b *Batcher) submit(req *batchReq) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.reqs <- req
	b.mu.Unlock()
	return <-req.done
}

// Close drains the queue, flushes the final batch, and closes the
// underlying store.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.reqs)
	b.mu.Unlock()
	b.wg.Wait()
	return b.st.Close()
}

// flushLoop is the group-commit leader: it collects a batch per the
// policy, applies it, syncs once, and releases every writer in it.
func (b *Batcher) flushLoop() {
	defer b.wg.Done()
	for {
		req, ok := <-b.reqs
		if !ok {
			return
		}
		batch := b.collect(req)
		b.flush(batch)
	}
}

// collect gathers a batch starting from the leader request: first any
// writes already queued, then — when MaxDelay allows — joiners that
// arrive before the timer fires, up to MaxBatch.
func (b *Batcher) collect(leader *batchReq) []*batchReq {
	batch := []*batchReq{leader}
drain:
	for len(batch) < b.policy.MaxBatch {
		select {
		case r, ok := <-b.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			break drain
		}
	}
	if b.policy.MaxDelay <= 0 || len(batch) >= b.policy.MaxBatch {
		return batch
	}
	timer := b.clock.NewTimer(b.policy.MaxDelay)
	defer timer.Stop()
	for len(batch) < b.policy.MaxBatch {
		select {
		case r, ok := <-b.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C():
			return batch
		}
	}
	return batch
}

// flush applies a batch in arrival order, syncs once, and completes
// every request. Apply errors are per-request; a sync failure fails
// the whole batch, because none of its records are known durable.
func (b *Batcher) flush(batch []*batchReq) {
	var stats FlushStats
	var t0 int64
	if b.onStats != nil {
		t0 = b.now()
		stats.Size = len(batch)
		stats.QueueWaitNs = make([]int64, len(batch))
		for i, r := range batch {
			stats.QueueWaitNs[i] = t0 - r.enq
		}
	}
	errs := make([]error, len(batch))
	for i, r := range batch {
		if r.meta {
			errs[i] = b.st.SaveMeta(r.data)
		} else {
			errs[i] = b.st.Write(r.idx, r.data, r.ver)
		}
	}
	var applied int64
	if b.onStats != nil {
		applied = b.now()
		stats.ApplyNs = applied - t0
	}
	if b.syncer != nil {
		if err := b.syncer.Sync(); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
		if b.onStats != nil {
			stats.SyncNs = b.now() - applied
		}
	}
	if b.onFlush != nil {
		b.onFlush(len(batch))
	}
	if b.onStats != nil {
		b.onStats(stats)
	}
	for i, r := range batch {
		r.done <- errs[i]
	}
}
