package store

import (
	"sync/atomic"
	"testing"

	"relidev/internal/block"
)

// BenchmarkDurableWrite compares the per-write cost of the durable
// store stacks (DESIGN.md §12): FileStore syncing every write,
// SegStore syncing every append, and SegStore behind group commit
// where concurrent writers share one fsync. Run with -cpu or higher
// parallelism to see coalescing; even at parallelism 8 on one core the
// batched variant amortises most syncs away.
func BenchmarkDurableWrite(b *testing.B) {
	geom := block.Geometry{BlockSize: 512, NumBlocks: 256}
	payload := make([]byte, geom.BlockSize)

	type stack struct {
		name string
		open func(b *testing.B) Store
	}
	syncEvery := func(st Store) Store { return &syncingStore{Store: st} }
	stacks := []stack{
		{"file-sync", func(b *testing.B) Store {
			st, err := CreateFile(b.TempDir()+"/img", geom)
			if err != nil {
				b.Fatal(err)
			}
			return syncEvery(st)
		}},
		{"segment-sync", func(b *testing.B) Store {
			st, err := CreateSeg(b.TempDir(), geom)
			if err != nil {
				b.Fatal(err)
			}
			return syncEvery(st)
		}},
		{"batched-segment", func(b *testing.B) Store {
			st, err := CreateSeg(b.TempDir(), geom)
			if err != nil {
				b.Fatal(err)
			}
			return NewBatcher(st, BatchPolicy{MaxBatch: 64})
		}},
	}
	for _, s := range stacks {
		b.Run(s.name, func(b *testing.B) {
			st := s.open(b)
			defer st.Close()
			var next atomic.Int64
			var ver atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					idx := block.Index(next.Add(1) % int64(geom.NumBlocks))
					if err := st.Write(idx, payload, block.Version(ver.Add(1))); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// syncingStore syncs after every write — the durability discipline an
// unbatched site store needs so a crash loses nothing acknowledged.
type syncingStore struct {
	Store
}

func (s *syncingStore) Write(idx block.Index, data []byte, ver block.Version) error {
	if err := s.Store.Write(idx, data, ver); err != nil {
		return err
	}
	if sy, ok := s.Store.(Syncer); ok {
		return sy.Sync()
	}
	return nil
}
