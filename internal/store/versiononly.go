package store

import (
	"errors"
	"sync"

	"relidev/internal/block"
)

// ErrNoData is returned by reads of a version-only store: witnesses
// record how current every block is, never the block contents.
var ErrNoData = errors.New("store: witness store holds versions only, no data")

// VersionOnlyStore backs a *witness* site (Pâris, "Voting with a Variable
// Number of Copies" [10]): it participates in quorums by tracking
// per-block version numbers but stores no block data, cutting the
// storage cost of a copy to a few bytes per block. Reads fail with
// ErrNoData; writes record the version and discard the payload.
type VersionOnlyStore struct {
	mu       sync.RWMutex
	geom     block.Geometry
	versions block.Vector
	meta     []byte
	closed   bool
}

var _ Store = (*VersionOnlyStore)(nil)

// NewVersionOnly returns an empty version-only store with the given
// geometry.
func NewVersionOnly(geom block.Geometry) (*VersionOnlyStore, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &VersionOnlyStore{geom: geom, versions: block.NewVector(geom.NumBlocks)}, nil
}

// Geometry returns the device shape.
func (s *VersionOnlyStore) Geometry() block.Geometry { return s.geom }

// Read always fails: witnesses hold no data.
func (s *VersionOnlyStore) Read(idx block.Index) ([]byte, block.Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	if err := checkAccess(s.geom, idx); err != nil {
		return nil, 0, err
	}
	return nil, s.versions[idx], ErrNoData
}

// Write records the version and discards the data.
func (s *VersionOnlyStore) Write(idx block.Index, data []byte, ver block.Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := checkWrite(s.geom, idx, data); err != nil {
		return err
	}
	s.versions[idx] = ver
	return nil
}

// Version returns the recorded version of block idx.
func (s *VersionOnlyStore) Version(idx block.Index) (block.Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if err := checkAccess(s.geom, idx); err != nil {
		return 0, err
	}
	return s.versions[idx], nil
}

// Vector returns a copy of the version vector.
func (s *VersionOnlyStore) Vector() block.Vector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions.Clone()
}

// LoadMeta returns the metadata area.
func (s *VersionOnlyStore) LoadMeta() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.meta == nil {
		return nil, nil
	}
	out := make([]byte, len(s.meta))
	copy(out, s.meta)
	return out, nil
}

// SaveMeta replaces the metadata area.
func (s *VersionOnlyStore) SaveMeta(meta []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.meta = make([]byte, len(meta))
	copy(s.meta, meta)
	return nil
}

// Close marks the store closed.
func (s *VersionOnlyStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
