package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"relidev/internal/block"
)

// SegStore layout: a directory of append-only segment files named
// seg-<seq>.log. Each segment starts with a header
//
//	magic[8] blockSize[4] numBlocks[4] seq[8]
//
// followed by CRC-framed records (little endian):
//
//	crc32[4] type[1] idx[4] ver[8] len[4] payload[len]
//
// where the CRC (IEEE) covers everything after the crc field. Record
// type 0 carries a block write (payload is the block data, len must
// equal the block size); type 1 carries the scheme metadata area.
//
// Writes never seek: a block update appends a fresh record to the
// active segment and updates the in-memory image, so the disk write
// path is a single sequential append (plus one fsync per Sync call —
// see Batcher for amortising that). When the active segment exceeds
// the rotation threshold it is fsynced and sealed, a new segment is
// created, the directory is fsynced so the new name survives crash,
// and segments whose records have all been superseded are deleted.
//
// On open the segments are replayed in sequence order to rebuild the
// image. A torn tail — a short or CRC-damaged record at the end of the
// *last* segment, the only place an in-flight append can be
// interrupted — is truncated away; damage anywhere else is corruption
// and fails the open.
const (
	segMagic      = "RELIDSEG"
	segHeaderSize = 8 + 4 + 4 + 8
	recHeaderSize = 4 + 1 + 4 + 8 + 4

	recBlock = 0
	recMeta  = 1

	// defaultMaxSegmentBytes rotates segments at 4 MiB.
	defaultMaxSegmentBytes = 4 << 20
)

// ErrCorruptSegment reports CRC or framing damage before the tail of
// the last segment, which replay cannot repair.
var ErrCorruptSegment = errors.New("store: corrupt segment record")

// ErrNoSegments reports an OpenSeg on a directory holding no segment
// files; callers typically fall back to CreateSeg.
var ErrNoSegments = errors.New("store: no segments")

// SegStore is a Store backed by a directory of append-only segment
// files. Reads are served from an in-memory image; writes append.
type SegStore struct {
	// The embedded MemStore holds the authoritative in-memory image
	// (data, versions, meta) and the mutex; SegStore layers the log
	// underneath its write path.
	mem *MemStore

	dir      string
	maxBytes int64

	active    *os.File
	activeSeq uint64
	activeLen int64

	// liveSeg[idx] is the segment holding block idx's newest record
	// (liveNone when the block has never been written); metaSeg
	// likewise for the metadata area. live[seq] counts records in
	// segment seq that are still current, so a segment whose count
	// reaches zero holds only superseded history and can be deleted.
	liveSeg []uint64
	metaSeg uint64
	live    map[uint64]int
}

const liveNone = ^uint64(0)

var _ Store = (*SegStore)(nil)

// SegOption tunes a SegStore.
type SegOption func(*SegStore)

// WithMaxSegmentBytes sets the rotation threshold.
func WithMaxSegmentBytes(n int64) SegOption {
	return func(s *SegStore) {
		if n > 0 {
			s.maxBytes = n
		}
	}
}

// CreateSeg initialises dir (created if missing, must not already hold
// segments) as an all-zero segment store.
func CreateSeg(dir string, geom block.Geometry, opts ...SegOption) (*SegStore, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create segment dir: %w", err)
	}
	if names, err := segmentNames(dir); err != nil {
		return nil, err
	} else if len(names) > 0 {
		return nil, fmt.Errorf("store: %s already holds %d segments", dir, len(names))
	}
	s, err := newSegStore(dir, geom, opts)
	if err != nil {
		return nil, err
	}
	//relidev:allow locking: store not yet shared during construction
	if err := s.openSegmentLocked(0); err != nil {
		s.mem.Close()
		return nil, err
	}
	return s, nil
}

// OpenSeg replays an existing segment store, truncating a torn tail in
// the final segment.
func OpenSeg(dir string, opts ...SegOption) (*SegStore, error) {
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoSegments, dir)
	}
	var s *SegStore
	var lastSeq uint64
	for i, name := range names {
		path := filepath.Join(dir, name)
		geom, seq, err := readSegHeader(path)
		if err != nil {
			return nil, err
		}
		if s == nil {
			if s, err = newSegStore(dir, geom, opts); err != nil {
				return nil, err
			}
		} else if s.mem.geom != geom {
			s.mem.Close()
			return nil, fmt.Errorf("store: segment %s geometry %+v differs from %+v", name, geom, s.mem.geom)
		}
		if err := s.replaySegment(path, seq, i == len(names)-1); err != nil {
			s.mem.Close()
			return nil, err
		}
		lastSeq = seq
	}
	last := filepath.Join(dir, names[len(names)-1])
	f, err := os.OpenFile(last, os.O_RDWR, 0)
	if err != nil {
		s.mem.Close()
		return nil, fmt.Errorf("reopen active segment: %w", err)
	}
	if s.activeLen, err = f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		s.mem.Close()
		return nil, fmt.Errorf("seek active segment: %w", err)
	}
	s.active = f
	s.activeSeq = lastSeq
	return s, nil
}

func newSegStore(dir string, geom block.Geometry, opts []SegOption) (*SegStore, error) {
	mem, err := NewMem(geom)
	if err != nil {
		return nil, err
	}
	s := &SegStore{
		mem:      mem,
		dir:      dir,
		maxBytes: defaultMaxSegmentBytes,
		liveSeg:  make([]uint64, geom.NumBlocks),
		metaSeg:  liveNone,
		live:     make(map[uint64]int),
	}
	for i := range s.liveSeg {
		s.liveSeg[i] = liveNone
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Geometry returns the device shape.
func (s *SegStore) Geometry() block.Geometry { return s.mem.Geometry() }

// Read returns a copy of block idx and its version from the image.
func (s *SegStore) Read(idx block.Index) ([]byte, block.Version, error) {
	return s.mem.Read(idx)
}

// Version returns the version of block idx.
func (s *SegStore) Version(idx block.Index) (block.Version, error) {
	return s.mem.Version(idx)
}

// Vector returns a copy of the full version vector.
func (s *SegStore) Vector() block.Vector { return s.mem.Vector() }

// Write appends a block record to the active segment and installs it
// in the image.
func (s *SegStore) Write(idx block.Index, data []byte, ver block.Version) error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if s.mem.closed {
		return ErrClosed
	}
	if err := checkWrite(s.mem.geom, idx, data); err != nil {
		return err
	}
	if err := s.appendLocked(recBlock, idx, ver, data); err != nil {
		return err
	}
	copy(s.mem.slice(idx), data)
	s.mem.versions[idx] = ver
	s.retireLocked(&s.liveSeg[idx])
	return nil
}

// LoadMeta returns a copy of the metadata area.
func (s *SegStore) LoadMeta() ([]byte, error) { return s.mem.LoadMeta() }

// SaveMeta appends a metadata record and installs it in the image.
func (s *SegStore) SaveMeta(meta []byte) error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if s.mem.closed {
		return ErrClosed
	}
	if len(meta) > defaultMetaCap {
		return fmt.Errorf("store: metadata %d bytes exceeds capacity %d", len(meta), defaultMetaCap)
	}
	if err := s.appendLocked(recMeta, 0, 0, meta); err != nil {
		return err
	}
	s.mem.meta = append([]byte(nil), meta...)
	s.retireLocked(&s.metaSeg)
	return nil
}

// Sync flushes the active segment to disk.
func (s *SegStore) Sync() error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if s.mem.closed {
		return ErrClosed
	}
	return s.active.Sync()
}

// Close syncs and closes the active segment.
func (s *SegStore) Close() error {
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if s.mem.closed {
		return nil
	}
	s.mem.closed = true
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		s.active.Close()
		return err
	}
	return s.active.Close()
}

// appendLocked frames and appends one record, rotating first when the
// active segment is full. Callers hold s.mem.mu.
func (s *SegStore) appendLocked(typ byte, idx block.Index, ver block.Version, payload []byte) error {
	if s.activeLen >= s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	rec := make([]byte, recHeaderSize+len(payload))
	rec[4] = typ
	binary.LittleEndian.PutUint32(rec[5:], uint32(idx))
	binary.LittleEndian.PutUint64(rec[9:], uint64(ver))
	binary.LittleEndian.PutUint32(rec[17:], uint32(len(payload)))
	copy(rec[recHeaderSize:], payload)
	binary.LittleEndian.PutUint32(rec[:4], crc32.ChecksumIEEE(rec[4:]))
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("append segment record: %w", err)
	}
	s.activeLen += int64(len(rec))
	s.live[s.activeSeq]++
	return nil
}

// retireLocked moves a liveness slot (a block's or the metadata's) to
// the active segment, decrementing the old segment's live count.
// Callers hold s.mem.mu; the record itself was already appended.
func (s *SegStore) retireLocked(slot *uint64) {
	if old := *slot; old != liveNone {
		s.live[old]--
	}
	*slot = s.activeSeq
}

// rotateLocked seals the active segment (fsync), opens the next one,
// fsyncs the directory, and deletes fully-superseded segments. Dead
// segments are only collected here, after the records that displaced
// them are durable. Callers hold s.mem.mu.
func (s *SegStore) rotateLocked() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("seal segment %d: %w", s.activeSeq, err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("seal segment %d: %w", s.activeSeq, err)
	}
	if err := s.openSegmentLocked(s.activeSeq + 1); err != nil {
		return err
	}
	var dead []uint64
	for seq, n := range s.live {
		if n == 0 && seq != s.activeSeq {
			dead = append(dead, seq)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, seq := range dead {
		if err := os.Remove(filepath.Join(s.dir, segmentName(seq))); err != nil {
			return fmt.Errorf("delete dead segment %d: %w", seq, err)
		}
		delete(s.live, seq)
	}
	if len(dead) > 0 {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	return nil
}

// openSegmentLocked creates segment seq, writes its header, and fsyncs
// the directory so the new name survives a crash. Callers hold
// s.mem.mu (or are constructing the store).
func (s *SegStore) openSegmentLocked(seq uint64) error {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("create segment: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.mem.geom.BlockSize))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(s.mem.geom.NumBlocks))
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync segment header: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.activeSeq = seq
	s.activeLen = segHeaderSize
	if _, ok := s.live[seq]; !ok {
		s.live[seq] = 0
	}
	return nil
}

// replaySegment applies one segment's records to the image. A damaged
// record in the last segment is a torn append: the file is truncated
// at the last intact record and replay succeeds. Damage elsewhere is
// corruption.
func (s *SegStore) replaySegment(path string, seq uint64, last bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("replay segment: %w", err)
	}
	defer f.Close()
	if _, ok := s.live[seq]; !ok {
		s.live[seq] = 0
	}
	off := int64(segHeaderSize)
	hdr := make([]byte, recHeaderSize)
	for {
		n, err := f.ReadAt(hdr, off)
		if err == io.EOF && n == 0 {
			return nil
		}
		payload, recErr := func() ([]byte, error) {
			if err != nil {
				return nil, fmt.Errorf("torn record header at %d", off)
			}
			size := binary.LittleEndian.Uint32(hdr[17:])
			if size > uint32(s.mem.geom.BlockSize)+defaultMetaCap {
				return nil, fmt.Errorf("implausible record length %d at %d", size, off)
			}
			body := make([]byte, int(size))
			if _, err := f.ReadAt(body, off+recHeaderSize); err != nil {
				return nil, fmt.Errorf("torn record payload at %d", off)
			}
			sum := crc32.ChecksumIEEE(hdr[4:])
			sum = crc32.Update(sum, crc32.IEEETable, body)
			if sum != binary.LittleEndian.Uint32(hdr[:4]) {
				return nil, fmt.Errorf("checksum mismatch at %d", off)
			}
			return body, nil
		}()
		if recErr != nil {
			if !last {
				return fmt.Errorf("%w: %s: %v", ErrCorruptSegment, filepath.Base(path), recErr)
			}
			if err := f.Truncate(off); err != nil {
				return fmt.Errorf("truncate torn tail: %w", err)
			}
			return f.Sync()
		}
		idx := block.Index(binary.LittleEndian.Uint32(hdr[5:]))
		ver := block.Version(binary.LittleEndian.Uint64(hdr[9:]))
		switch hdr[4] {
		case recBlock:
			if err := checkWrite(s.mem.geom, idx, payload); err != nil {
				return fmt.Errorf("%w: %s: record at %d: %v", ErrCorruptSegment, filepath.Base(path), off, err)
			}
			copy(s.mem.slice(idx), payload)
			s.mem.versions[idx] = ver
			s.live[seq]++
			s.retireAt(&s.liveSeg[idx], seq)
		case recMeta:
			s.mem.meta = append([]byte(nil), payload...)
			s.live[seq]++
			s.retireAt(&s.metaSeg, seq)
		default:
			return fmt.Errorf("%w: %s: unknown record type %d at %d", ErrCorruptSegment, filepath.Base(path), hdr[4], off)
		}
		off += recHeaderSize + int64(len(payload))
	}
}

// retireAt is retireLocked for replay, where the landing segment is
// the one being replayed rather than the active segment.
func (s *SegStore) retireAt(slot *uint64, seq uint64) {
	if old := *slot; old != liveNone {
		s.live[old]--
	}
	*slot = seq
}

func segmentName(seq uint64) string { return fmt.Sprintf("seg-%08d.log", seq) }

// segmentNames lists the segment files in dir in sequence order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("list segments: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if len(name) == len("seg-00000000.log") && name[:4] == "seg-" && filepath.Ext(name) == ".log" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// readSegHeader validates a segment file's header and returns its
// geometry and sequence number.
func readSegHeader(path string) (block.Geometry, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return block.Geometry{}, 0, fmt.Errorf("open segment: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return block.Geometry{}, 0, fmt.Errorf("read segment header: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return block.Geometry{}, 0, ErrBadImage
	}
	geom := block.Geometry{
		BlockSize: int(binary.LittleEndian.Uint32(hdr[8:])),
		NumBlocks: int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	if err := geom.Validate(); err != nil {
		return block.Geometry{}, 0, fmt.Errorf("segment header: %w", err)
	}
	return geom, binary.LittleEndian.Uint64(hdr[16:]), nil
}

// syncDir fsyncs a directory so entry creations and deletions inside
// it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	return nil
}
