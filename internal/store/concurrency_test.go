package store

import (
	"path/filepath"
	"sync"
	"testing"

	"relidev/internal/block"
)

// TestConcurrentStoreAccess drives every Store implementation from many
// goroutines; with -race this proves the locking discipline.
func TestConcurrentStoreAccess(t *testing.T) {
	impls := map[string]Store{}
	if m, err := NewMem(testGeom); err == nil {
		impls["mem"] = m
	}
	if f, err := CreateFile(filepath.Join(t.TempDir(), "img"), testGeom); err == nil {
		impls["file"] = f
	}
	if v, err := NewVersionOnly(testGeom); err == nil {
		impls["versiononly"] = v
	}
	if s, err := CreateSeg(filepath.Join(t.TempDir(), "segs"), testGeom, WithMaxSegmentBytes(16<<10)); err == nil {
		impls["segment"] = s
	}
	if s, err := CreateSeg(filepath.Join(t.TempDir(), "batched"), testGeom, WithMaxSegmentBytes(16<<10)); err == nil {
		impls["batched-segment"] = NewBatcher(s, BatchPolicy{MaxBatch: 8})
	}
	for name, s := range impls {
		s := s
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := fill(byte(w), testGeom.BlockSize)
					for i := 0; i < 200; i++ {
						idx := block.Index((w + i) % testGeom.NumBlocks)
						if err := s.Write(idx, buf, block.Version(i)); err != nil {
							t.Error(err)
							return
						}
						if _, _, err := s.Read(idx); err != nil && name != "versiononly" {
							t.Error(err)
							return
						}
						if _, err := s.Version(idx); err != nil {
							t.Error(err)
							return
						}
						_ = s.Vector()
						if i%50 == 0 {
							if err := s.SaveMeta([]byte{byte(w)}); err != nil {
								t.Error(err)
								return
							}
							if _, err := s.LoadMeta(); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
