// Package store provides versioned block storage for a replica site.
//
// Each site participating in the replication holds a full copy of the
// device: for every block, the data plus the per-block version number the
// consistency algorithms rely on (paper §3). Stores model *stable*
// storage: their contents survive a fail-stop crash of the site (the site
// process halts, the disk does not lose data), which is exactly the
// failure model of §2 and [11].
//
// Three implementations are provided: MemStore (fast, for simulation
// and tests), FileStore (a single backing file with in-place block
// slots), and SegStore (checksummed append-only segment files with an
// in-memory image — the fast write path for real server processes).
// All offer a small metadata area used by the available copy scheme to
// persist its was-available set across crashes. Batcher layers group
// commit over any of them, coalescing concurrent writes into a single
// apply+fsync.
package store

import (
	"errors"
	"fmt"

	"relidev/internal/block"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// OutOfRangeError reports an access outside the device geometry.
type OutOfRangeError struct {
	Index     block.Index
	NumBlocks int
}

// Error implements the error interface.
func (e *OutOfRangeError) Error() string {
	return fmt.Sprintf("store: block %d out of range (device has %d blocks)", e.Index, e.NumBlocks)
}

// SizeError reports a write whose payload does not match the block size.
type SizeError struct {
	Got, Want int
}

// Error implements the error interface.
func (e *SizeError) Error() string {
	return fmt.Sprintf("store: payload is %d bytes, block size is %d", e.Got, e.Want)
}

// Store is stable versioned block storage for one site.
//
// Implementations must be safe for concurrent use: a site serves local
// file system requests and remote protocol requests at the same time.
type Store interface {
	// Geometry returns the device shape.
	Geometry() block.Geometry

	// Read returns the data and version of block idx. The returned slice
	// is a copy owned by the caller.
	Read(idx block.Index) ([]byte, block.Version, error)

	// Write replaces block idx with data at version ver. Payloads shorter
	// than the block size are rejected; the caller pads.
	Write(idx block.Index, data []byte, ver block.Version) error

	// Version returns the version of block idx without reading the data.
	Version(idx block.Index) (block.Version, error)

	// Vector returns a copy of the full version vector.
	Vector() block.Vector

	// LoadMeta returns the scheme metadata area (nil when never written).
	LoadMeta() ([]byte, error)

	// SaveMeta atomically replaces the scheme metadata area.
	SaveMeta(meta []byte) error

	// Close releases resources. Further operations fail with ErrClosed.
	Close() error
}

func checkAccess(g block.Geometry, idx block.Index) error {
	if !g.Contains(idx) {
		return &OutOfRangeError{Index: idx, NumBlocks: g.NumBlocks}
	}
	return nil
}

func checkWrite(g block.Geometry, idx block.Index, data []byte) error {
	if err := checkAccess(g, idx); err != nil {
		return err
	}
	if len(data) != g.BlockSize {
		return &SizeError{Got: len(data), Want: g.BlockSize}
	}
	return nil
}
