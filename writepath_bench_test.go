// Write-path benchmarks: the before/after pair for the DESIGN.md §12
// fast write path, runnable in one go. BenchmarkWritePathFast drives
// the default single-round prepare-write; BenchmarkWritePathTwoRound
// forces the paper's literal Figure 4 two-round shape on the same
// workload, so the ratio between the two series is exactly the cost of
// the second quorum round trip. BenchmarkWritePathDurable adds the
// full durable stack — append-only segment stores with group commit —
// to show the protocol win survives real fsyncs.
//
// Run: go test -run='^$' -bench=WritePath .
// Results are tracked in BENCH_writepath.json and EXPERIMENTS.md.
package relidev_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"relidev"
)

func benchWritePath(b *testing.B, extra ...relidev.Option) {
	for _, n := range []int{3, 5} {
		for _, lat := range []time.Duration{0, parLatency} {
			b.Run(fmt.Sprintf("voting/n%d/%s", n, latName(lat)), func(b *testing.B) {
				b.SetParallelism(8)
				_, dev := parallelSimCluster(b, relidev.Voting, n, lat, extra...)
				ctx := context.Background()
				hammerParallel(b, func(g int, idx relidev.Index) error {
					payload := make([]byte, parBlockSize)
					payload[0] = byte(g)
					return dev.WriteBlock(ctx, idx, payload)
				})
			})
		}
	}
}

// BenchmarkWritePathFast is the default single-round write: one
// prepare-write quorum round trip per write.
func BenchmarkWritePathFast(b *testing.B) {
	benchWritePath(b)
}

// BenchmarkWritePathTwoRound forces the classic shape — a version
// collection round then a put fan-out — on the identical workload.
func BenchmarkWritePathTwoRound(b *testing.B) {
	benchWritePath(b, relidev.WithTwoRoundVotingWrites())
}

// BenchmarkWritePathDurable runs the fast path over segment stores
// with group commit: every write is made durable by an fsync it
// (usually) shares with its neighbours.
func BenchmarkWritePathDurable(b *testing.B) {
	for _, n := range []int{3, 5} {
		for _, lat := range []time.Duration{0, parLatency} {
			b.Run(fmt.Sprintf("voting/n%d/%s", n, latName(lat)), func(b *testing.B) {
				b.SetParallelism(8)
				_, dev := parallelSimCluster(b, relidev.Voting, n, lat,
					relidev.WithSegmentStores(b.TempDir()),
					relidev.WithGroupCommit(0, 64))
				ctx := context.Background()
				hammerParallel(b, func(g int, idx relidev.Index) error {
					payload := make([]byte, parBlockSize)
					payload[0] = byte(g)
					return dev.WriteBlock(ctx, idx, payload)
				})
			})
		}
	}
}
