package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "nac"} {
		var buf bytes.Buffer
		ok, err := run(&buf, scheme, 4, 8, 3, 40, 4, 0.25, false)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !ok {
			t.Fatalf("%s: invariant violations:\n%s", scheme, buf.String())
		}
		if !strings.Contains(buf.String(), "invariants OK") {
			t.Fatalf("%s: unexpected output:\n%s", scheme, buf.String())
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, "voting", 4, 8, 3, 20, 2, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("violations:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"digest"`) {
		t.Fatalf("JSON output missing digest:\n%s", buf.String())
	}
}

func TestRunDigestStableAcrossInvocations(t *testing.T) {
	digest := func() string {
		var buf bytes.Buffer
		if _, err := run(&buf, "voting", 4, 8, 11, 30, 4, 0.25, true); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := digest(), digest(); a != b {
		t.Fatalf("reports diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if _, err := run(&bytes.Buffer{}, "nope", 4, 8, 1, 10, 2, 0.25, false); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
