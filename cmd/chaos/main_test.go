package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relidev/internal/chaos"
)

func testConfig(t *testing.T, scheme string, seed int64, events, ops int) chaos.Config {
	t.Helper()
	kind, err := parseScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return chaos.Config{
		Scheme:      kind,
		Sites:       4,
		Blocks:      8,
		Seed:        seed,
		Events:      events,
		OpsPerEvent: ops,
		Rho:         0.25,
		Observe:     true,
		Repair:      true,
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "nac"} {
		var buf bytes.Buffer
		ok, err := run(&buf, testConfig(t, scheme, 3, 40, 4), false, "", "", "", "", "")
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !ok {
			t.Fatalf("%s: invariant violations:\n%s", scheme, buf.String())
		}
		if !strings.Contains(buf.String(), "invariants OK") {
			t.Fatalf("%s: unexpected output:\n%s", scheme, buf.String())
		}
		if !strings.Contains(buf.String(), "§5 conf  OK") {
			t.Fatalf("%s: report missing conformance line:\n%s", scheme, buf.String())
		}
		if !strings.Contains(buf.String(), "§4 avail empirical") {
			t.Fatalf("%s: report missing availability line:\n%s", scheme, buf.String())
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	ok, err := run(&buf, testConfig(t, "voting", 3, 20, 2), true, "", "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("violations:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"digest"`) {
		t.Fatalf("JSON output missing digest:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"conformance"`) {
		t.Fatalf("JSON output missing conformance:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"avail_conformance"`) {
		t.Fatalf("JSON output missing availability conformance:\n%s", buf.String())
	}
}

func TestRunDigestStableAcrossInvocations(t *testing.T) {
	digest := func() string {
		var buf bytes.Buffer
		if _, err := run(&buf, testConfig(t, "voting", 11, 30, 4), true, "", "", "", "", ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := digest(), digest(); a != b {
		t.Fatalf("reports diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestRunWritesMetricsArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	ok, err := run(&buf, testConfig(t, "ac", 3, 30, 4), false, path, "", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("violations:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Scheme      string          `json:"scheme"`
		Digest      string          `json:"digest"`
		Conformance json.RawMessage `json:"conformance"`
		Metrics     json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &artifact); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, raw)
	}
	if artifact.Scheme != "available-copy" || artifact.Digest == "" {
		t.Fatalf("artifact header incomplete: %+v", artifact)
	}
	if len(artifact.Conformance) == 0 || len(artifact.Metrics) == 0 {
		t.Fatalf("artifact missing conformance/metrics sections:\n%s", raw)
	}
}

func TestRunMetricsOutRequiresObservation(t *testing.T) {
	cfg := testConfig(t, "voting", 3, 10, 2)
	cfg.Observe = false
	path := filepath.Join(t.TempDir(), "metrics.json")
	if _, err := run(&bytes.Buffer{}, cfg, false, path, "", "", "", ""); err == nil {
		t.Fatal("metrics-out accepted without observation")
	}
}

func TestParseSchemeRejectsUnknown(t *testing.T) {
	if _, err := parseScheme("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunWritesAvailArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "avail.json")
	var buf bytes.Buffer
	ok, err := run(&buf, testConfig(t, "nac", 3, 60, 4), false, "", path, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("violations:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Scheme string `json:"scheme"`
		Digest string `json:"digest"`
		Avail  *struct {
			Failures uint64 `json:"failures"`
			Repairs  uint64 `json:"repairs"`
		} `json:"avail"`
		Conformance *struct {
			OK bool `json:"ok"`
		} `json:"conformance"`
	}
	if err := json.Unmarshal(raw, &artifact); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, raw)
	}
	if artifact.Scheme != "naive" || artifact.Digest == "" {
		t.Fatalf("artifact header incomplete: %+v", artifact)
	}
	if artifact.Avail == nil || artifact.Avail.Failures == 0 {
		t.Fatalf("artifact missing estimator stats:\n%s", raw)
	}
	if artifact.Conformance == nil || !artifact.Conformance.OK {
		t.Fatalf("artifact missing passing §4 verdict:\n%s", raw)
	}
}

func TestRunWritesTTFArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ttf.json")
	var buf bytes.Buffer
	ok, err := run(&buf, testConfig(t, "voting", 3, 60, 4), false, "", "", path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("violations:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Scheme  string `json:"scheme"`
		Digest  string `json:"digest"`
		Samples []struct {
			Site       int   `json:"site"`
			Stale      int   `json:"stale"`
			DeadlineNS int64 `json:"deadline_ns"`
			OK         bool  `json:"ok"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(raw, &artifact); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, raw)
	}
	if artifact.Scheme != "voting" || artifact.Digest == "" {
		t.Fatalf("artifact header incomplete: %+v", artifact)
	}
	if len(artifact.Samples) == 0 {
		t.Fatalf("artifact has no time-to-freshness samples:\n%s", raw)
	}
	for _, s := range artifact.Samples {
		if !s.OK {
			t.Fatalf("sample missed its deadline: %+v", s)
		}
		if s.DeadlineNS <= 0 {
			t.Fatalf("sample has no deadline: %+v", s)
		}
	}
}

func TestRunTTFOutRequiresRepair(t *testing.T) {
	cfg := testConfig(t, "voting", 3, 10, 2)
	cfg.Repair = false
	path := filepath.Join(t.TempDir(), "ttf.json")
	if _, err := run(&bytes.Buffer{}, cfg, false, "", "", path, "", ""); err == nil {
		t.Fatal("ttf-out accepted without repair enabled")
	}
}

func TestRunWritesSLOArtifact(t *testing.T) {
	cfg := testConfig(t, "voting", 3, 60, 4)
	cfg.Telemetry = true
	path := filepath.Join(t.TempDir(), "slo.json")
	var buf bytes.Buffer
	ok, err := run(&buf, cfg, false, "", "", "", "", path)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("violations:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Scheme string `json:"scheme"`
		Digest string `json:"digest"`
		SLO    *struct {
			Overall string `json:"overall"`
			SLOs    []struct {
				Name string `json:"name"`
			} `json:"slos"`
		} `json:"slo"`
		Alerts json.RawMessage `json:"alerts"`
	}
	if err := json.Unmarshal(raw, &artifact); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, raw)
	}
	if artifact.Scheme != "voting" || artifact.Digest == "" {
		t.Fatalf("artifact header incomplete: %+v", artifact)
	}
	if artifact.SLO == nil || len(artifact.SLO.SLOs) == 0 {
		t.Fatalf("artifact missing the SLO evaluation:\n%s", raw)
	}
	// The alerts key is always present — null on a quiet run — so its
	// absence in an upload means the writer broke, not that all was well.
	if len(artifact.Alerts) == 0 {
		t.Fatalf("artifact missing the alerts key:\n%s", raw)
	}
}

func TestRunSLOOutRequiresTelemetry(t *testing.T) {
	cfg := testConfig(t, "voting", 3, 10, 2)
	path := filepath.Join(t.TempDir(), "slo.json")
	if _, err := run(&bytes.Buffer{}, cfg, false, "", "", "", "", path); err == nil {
		t.Fatal("slo-out accepted without telemetry enabled")
	}
}

func TestRunAvailOutRequiresObservation(t *testing.T) {
	cfg := testConfig(t, "voting", 3, 10, 2)
	cfg.Observe = false
	path := filepath.Join(t.TempDir(), "avail.json")
	if _, err := run(&bytes.Buffer{}, cfg, false, "", path, "", "", ""); err == nil {
		t.Fatal("avail-out accepted without observation")
	}
}
