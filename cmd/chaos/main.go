// Command chaos runs a seeded fault-injection schedule against a live
// in-process replica cluster and checks the paper's consistency claims
// as invariants. The same seed replays the same schedule bit-identically
// (compare the digest field); the exit status is non-zero when any
// invariant was violated.
//
// Usage:
//
//	chaos -scheme voting -seed 42 -events 1000
//	chaos -scheme ac -events 1000 -ops-per-event 8 -rho 0.3 -json
//	chaos -scheme nac -seed 7 -sites 6
//	chaos -scheme voting -metrics-out metrics.json
//	chaos -scheme ac -avail-out avail.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"relidev/internal/chaos"
	"relidev/internal/core"
)

func main() {
	var (
		schemeF    = flag.String("scheme", "voting", "scheme: voting, ac, nac")
		sites      = flag.Int("sites", 5, "number of replica sites")
		blocks     = flag.Int("blocks", 12, "device size in blocks")
		seed       = flag.Int64("seed", 1, "schedule seed (same seed = same run)")
		events     = flag.Int("events", 1000, "failure/repair events to apply")
		ops        = flag.Int("ops-per-event", 8, "workload operations between events")
		rho        = flag.Float64("rho", 0.25, "failure-to-repair rate ratio")
		asJSON     = flag.Bool("json", false, "emit the full report as JSON")
		observe    = flag.Bool("obs", true, "attach the observability layer and check §5 bracket conformance")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot (JSON) to this file (implies -obs)")
		availOut   = flag.String("avail-out", "", "write the availability observatory stats and §4 conformance verdict (JSON) to this file (implies -obs)")
		repairF    = flag.Bool("repair", true, "run the background anti-entropy repairer after every recovery and enforce bounded time-to-freshness")
		ttfOut     = flag.String("ttf-out", "", "write the per-recovery time-to-freshness samples (JSON) to this file (implies -repair)")
		flightF    = flag.Bool("flight", true, "attach the black-box flight recorder and health engine (requires -obs)")
		flightOut  = flag.String("flight-out", "", "write the sealed flight-recorder dump (JSON) to this file (implies -flight; dump is null unless a violation or critical health breach sealed it)")
		telemetryF = flag.Bool("telemetry", true, "attach the telemetry plane: tsdb sampling and SLO burn-rate evaluation at every checkpoint (requires -obs)")
		sloOut     = flag.String("slo-out", "", "write the final SLO evaluation and the alert transition log (JSON) to this file (implies -telemetry; alerts are null on a quiet run)")
		coda       = flag.Int("coda", 4, "fault-free workload batches appended after convergence, so burn-rate alerts can clear inside the run")
	)
	flag.Parse()
	kind, err := parseScheme(*schemeF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	cfg := chaos.Config{
		Scheme:      kind,
		Sites:       *sites,
		Blocks:      *blocks,
		Seed:        *seed,
		Events:      *events,
		OpsPerEvent: *ops,
		Rho:         *rho,
		Observe:     *observe || *metricsOut != "" || *availOut != "",
		Repair:      *repairF || *ttfOut != "",
		Flight:      *flightF || *flightOut != "",
		Telemetry:   *telemetryF || *sloOut != "",
		Coda:        *coda,
	}
	ok, err := run(os.Stdout, cfg, *asJSON, *metricsOut, *availOut, *ttfOut, *flightOut, *sloOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(2)
	}
}

func run(w io.Writer, cfg chaos.Config, asJSON bool, metricsOut, availOut, ttfOut, flightOut, sloOut string) (bool, error) {
	rep, err := chaos.Run(context.Background(), cfg)
	if err != nil {
		return false, err
	}
	if metricsOut != "" {
		if err := writeMetrics(metricsOut, rep); err != nil {
			return false, err
		}
	}
	if availOut != "" {
		if err := writeAvail(availOut, rep); err != nil {
			return false, err
		}
	}
	if ttfOut != "" {
		if err := writeTTF(ttfOut, rep); err != nil {
			return false, err
		}
	}
	if flightOut != "" {
		if err := writeFlight(flightOut, rep); err != nil {
			return false, err
		}
	}
	if sloOut != "" {
		if err := writeSLO(sloOut, rep); err != nil {
			return false, err
		}
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return false, err
		}
	} else {
		printReport(w, rep)
	}
	return len(rep.Violations) == 0, nil
}

// writeMetrics stores the run's metrics snapshot plus the conformance
// verdict as a standalone JSON artifact (the CI chaos job uploads it).
func writeMetrics(path string, rep *chaos.Report) error {
	if rep.Metrics == nil {
		return fmt.Errorf("no metrics collected (observability disabled)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Scheme      string      `json:"scheme"`
		Seed        int64       `json:"seed"`
		Digest      string      `json:"digest"`
		Conformance interface{} `json:"conformance,omitempty"`
		Metrics     interface{} `json:"metrics"`
	}{rep.Scheme, rep.Seed, rep.Digest, rep.Conformance, rep.Metrics})
}

// writeAvail stores the availability observatory's stats plus the §4
// Markov-conformance verdict as a standalone JSON artifact (the CI
// chaos job uploads it alongside the metrics snapshot).
func writeAvail(path string, rep *chaos.Report) error {
	if rep.Avail == nil {
		return fmt.Errorf("no availability stats collected (observability disabled)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Scheme      string      `json:"scheme"`
		Seed        int64       `json:"seed"`
		Digest      string      `json:"digest"`
		Avail       interface{} `json:"avail"`
		Conformance interface{} `json:"conformance,omitempty"`
	}{rep.Scheme, rep.Seed, rep.Digest, rep.Avail, rep.AvailConformance})
}

// writeTTF stores the per-recovery time-to-freshness samples as a
// standalone JSON artifact (the CI chaos job uploads it). Each sample
// records how much staleness lazy readmission left behind and how long
// the background repairer took, against its policy deadline.
func writeTTF(path string, rep *chaos.Report) error {
	if rep.Repair == nil {
		return fmt.Errorf("no repair samples collected (repair disabled)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Scheme  string      `json:"scheme"`
		Seed    int64       `json:"seed"`
		Digest  string      `json:"digest"`
		Samples interface{} `json:"samples"`
	}{rep.Scheme, rep.Seed, rep.Digest, rep.Repair})
}

// writeFlight stores the sealed flight-recorder dump (plus the final
// health verdict) as a standalone JSON artifact. Unlike the other
// writers it succeeds on a healthy run — the dump is null when nothing
// triggered a seal — so the CI chaos job can upload it
// unconditionally and its mere presence does not imply failure.
func writeFlight(path string, rep *chaos.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Scheme string      `json:"scheme"`
		Seed   int64       `json:"seed"`
		Digest string      `json:"digest"`
		Health interface{} `json:"health,omitempty"`
		Flight interface{} `json:"flight"`
	}{rep.Scheme, rep.Seed, rep.Digest, rep.Health, rep.Flight})
}

// writeSLO stores the final SLO evaluation and the alert transition log
// as a standalone JSON artifact. Like the flight writer it succeeds on
// a quiet run — the alert log is null when nothing fired — so the CI
// chaos job can upload it unconditionally.
func writeSLO(path string, rep *chaos.Report) error {
	if rep.SLO == nil {
		return fmt.Errorf("no SLO report collected (telemetry disabled)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Scheme string      `json:"scheme"`
		Seed   int64       `json:"seed"`
		Digest string      `json:"digest"`
		SLO    interface{} `json:"slo"`
		Alerts interface{} `json:"alerts"`
	}{rep.Scheme, rep.Seed, rep.Digest, rep.SLO, rep.SLOAlerts})
}

func printReport(w io.Writer, rep *chaos.Report) {
	fmt.Fprintf(w, "chaos %-15s seed=%d sites=%d rho=%g\n", rep.Scheme, rep.Seed, rep.Sites, rep.Rho)
	fmt.Fprintf(w, "  events   %d applied (%d fails, %d repairs, %d skipped), %d total failure(s)\n",
		rep.EventsApplied, rep.Fails, rep.Repairs, rep.EventsSkipped, rep.TotalFailures)
	fmt.Fprintf(w, "  workload %d ops (%d reads, %d writes), %d failed under chaos\n",
		rep.Ops, rep.Reads, rep.Writes, rep.OpErrors)
	fmt.Fprintf(w, "  faults   %d drops, %d reply losses, %d timeouts, %d delays, %d partition hits\n",
		rep.Faults.Drops, rep.Faults.ReplyLosses, rep.Faults.Timeouts, rep.Faults.Delays, rep.Faults.Partitions)
	if len(rep.Repair) > 0 {
		streamed, installed, missed := 0, 0, 0
		var worst, worstDeadline int64
		for _, s := range rep.Repair {
			if s.Stale > 0 {
				streamed++
			}
			installed += s.Installed
			if !s.OK {
				missed++
			}
			if s.ElapsedNS > worst {
				worst, worstDeadline = s.ElapsedNS, s.DeadlineNS
			}
		}
		fmt.Fprintf(w, "  repair   %d runs (%d with staleness, %d blocks installed, %d deadline misses), worst ttf %.2fms of %.2fms allowed\n",
			len(rep.Repair), streamed, installed, missed,
			float64(worst)/1e6, float64(worstDeadline)/1e6)
	}
	fmt.Fprintf(w, "  digest   %s\n", rep.Digest)
	if rep.Health != nil {
		active := 0
		for _, rv := range rep.Health.Rules {
			if rv.Active {
				active++
			}
		}
		fmt.Fprintf(w, "  health   %s (%d of %d rules active)\n", rep.Health.Overall, active, len(rep.Health.Rules))
	}
	if rep.Flight != nil {
		fmt.Fprintf(w, "  flight   sealed: %s (%d frames)\n", rep.Flight.Trigger, len(rep.Flight.Frames))
	}
	if rep.SLO != nil {
		fmt.Fprintf(w, "  slo      %s (%d firing, %d alert transitions over the run)\n",
			rep.SLO.Overall, rep.SLO.Firing, len(rep.SLOAlerts))
	}
	if rep.Conformance != nil {
		verdict := "OK"
		if !rep.Conformance.OK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "  §5 conf  %s (%s, bracket mode", verdict, rep.Conformance.Mode)
		for _, c := range rep.Conformance.Checks {
			fmt.Fprintf(w, "; %s %.2f∈[%.0f,%.0f]", c.Op, c.Observed, c.Min, c.Max)
		}
		fmt.Fprintf(w, ")\n")
	}
	if rep.Avail != nil {
		fmt.Fprintf(w, "  §4 avail empirical %.4f (lambda=%.4f mu=%.4f rho=%.4f, %d total failures)",
			rep.Avail.SystemAvailability, rep.Avail.Lambda, rep.Avail.Mu, rep.Avail.Rho, rep.Avail.TotalFailures)
		if c := rep.AvailConformance; c != nil && len(c.Checks) > 0 {
			verdict := "OK"
			if !c.OK {
				verdict = "VIOLATED"
			}
			ck := c.Checks[0]
			if ck.Note != "" {
				fmt.Fprintf(w, " — %s (%s)", verdict, ck.Note)
			} else {
				fmt.Fprintf(w, " — %s (Markov predicts %.4f, tolerance %.4f)", verdict, ck.Predicted, ck.Tolerance)
			}
		}
		fmt.Fprintf(w, "\n")
	}
	if len(rep.Violations) == 0 {
		fmt.Fprintf(w, "  invariants OK\n")
		return
	}
	fmt.Fprintf(w, "  INVARIANT VIOLATIONS (%d):\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "    - %s\n", v)
	}
}

func parseScheme(name string) (core.SchemeKind, error) {
	switch name {
	case "voting":
		return core.Voting, nil
	case "ac", "available-copy":
		return core.AvailableCopy, nil
	case "nac", "naive":
		return core.NaiveAvailableCopy, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want voting, ac, or nac)", name)
	}
}
