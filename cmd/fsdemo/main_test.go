package main

import "testing"

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "naive"} {
		if err := run(scheme, 3); err != nil {
			t.Fatalf("fsdemo %s: %v", scheme, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("bogus", 3); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if err := run("naive", 0); err == nil {
		t.Fatal("zero sites accepted")
	}
}
