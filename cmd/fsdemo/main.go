// Command fsdemo formats a mini file system on a reliable device and
// exercises it while replica sites crash and recover — the §2 story end
// to end: the file system code has no idea it is replicated.
//
// Usage:
//
//	fsdemo -scheme naive -sites 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"relidev"
	"relidev/internal/core"
	"relidev/internal/minifs"
	"relidev/internal/protocol"
)

func main() {
	var (
		schemeF = flag.String("scheme", "naive", "consistency scheme: voting, ac, naive")
		sites   = flag.Int("sites", 3, "number of replica sites")
	)
	flag.Parse()
	if err := run(*schemeF, *sites); err != nil {
		fmt.Fprintln(os.Stderr, "fsdemo:", err)
		os.Exit(1)
	}
}

func run(schemeF string, sites int) error {
	var kind core.SchemeKind
	switch schemeF {
	case "voting":
		kind = core.Voting
	case "ac", "available-copy":
		kind = core.AvailableCopy
	case "naive":
		kind = core.NaiveAvailableCopy
	default:
		return fmt.Errorf("unknown scheme %q", schemeF)
	}
	ctx := context.Background()
	cl, err := core.NewCluster(core.ClusterConfig{
		Sites:    sites,
		Geometry: relidev.Geometry{BlockSize: 512, NumBlocks: 512},
		Scheme:   kind,
	})
	if err != nil {
		return err
	}
	dev, err := cl.Device(0)
	if err != nil {
		return err
	}
	fmt.Printf("formatting minifs on a %d-site reliable device (%v scheme)\n", sites, kind)
	fs, err := minifs.Mkfs(ctx, dev)
	if err != nil {
		return err
	}
	if err := fs.MkdirAll(ctx, "/docs/notes"); err != nil {
		return err
	}
	if err := fs.WriteFile(ctx, "/docs/notes/a.txt", []byte("written with all sites up")); err != nil {
		return err
	}

	victim := protocol.SiteID(sites - 1)
	fmt.Printf("crashing site %v ...\n", victim)
	if err := cl.Fail(victim); err != nil {
		return err
	}
	if err := fs.WriteFile(ctx, "/docs/notes/b.txt", []byte("written with a site down")); err != nil {
		return err
	}
	data, err := fs.ReadFile(ctx, "/docs/notes/a.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read during failure: %q\n", data)

	fmt.Printf("restarting site %v (scheme recovery runs underneath)...\n", victim)
	if err := cl.Restart(ctx, victim); err != nil {
		return err
	}
	// Mount the same file system from the recovered site's device.
	dev2, err := cl.Device(victim)
	if err != nil {
		return err
	}
	fs2, err := minifs.Mount(ctx, dev2)
	if err != nil {
		return err
	}
	ents, err := fs2.ReadDir(ctx, "/docs/notes")
	if err != nil {
		return err
	}
	fmt.Printf("directory as seen from the recovered site:\n")
	for _, e := range ents {
		fmt.Printf("  %-8s %4d bytes\n", e.Name, e.Size)
	}
	data, err = fs2.ReadFile(ctx, "/docs/notes/b.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read at recovered site: %q\n", data)
	st := cl.Network().Stats()
	fmt.Printf("total high-level transmissions: %d (%d requests, %d replies)\n",
		st.Transmissions, st.Requests, st.Replies)
	return nil
}
