package main

import (
	"fmt"
	"testing"

	"relidev"
)

// startPeer launches one replica site on loopback and returns its
// address.
func startPeer(t *testing.T, id int, addrs map[int]string) *relidev.RemoteSite {
	t.Helper()
	peers := map[int]string{id: "127.0.0.1:0"}
	for k, v := range addrs {
		peers[k] = v
	}
	s, err := relidev.OpenRemote(relidev.RemoteConfig{
		Self:     id,
		Peers:    peers,
		Scheme:   relidev.NaiveAvailableCopy,
		Geometry: relidev.Geometry{BlockSize: 256, NumBlocks: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestWriteReadStatusAgainstLiveServers(t *testing.T) {
	// Two server sites; the CLI joins as site 0.
	s1 := startPeer(t, 1, nil)
	s2 := startPeer(t, 2, nil)
	peers := fmt.Sprintf("1=%s,2=%s", s1.Addr(), s2.Addr())

	if err := run(0, peers, "naive", "", 16, 256, []string{"write", "3", "hello tcp"}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run(0, peers, "naive", "", 16, 256, []string{"read", "3"}); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := run(0, peers, "naive", "", 16, 256, []string{"status"}); err != nil {
		t.Fatalf("status: %v", err)
	}
	// The servers really hold the data.
	if sum := s1.State(); sum != relidev.StateAvailable {
		t.Fatalf("server state = %v", sum)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	if err := run(0, "", "naive", "", 16, 256, nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run(0, "", "bogus", "", 16, 256, []string{"status"}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if err := run(0, "zzz", "naive", "", 16, 256, []string{"status"}); err == nil {
		t.Fatal("malformed peers accepted")
	}
	if err := run(0, "", "naive", "", 16, 256, []string{"read"}); err == nil {
		t.Fatal("read without block accepted")
	}
	if err := run(0, "", "naive", "", 16, 256, []string{"read", "not-a-number"}); err == nil {
		t.Fatal("non-numeric block accepted")
	}
	if err := run(0, "", "naive", "", 16, 256, []string{"write", "1"}); err == nil {
		t.Fatal("write without payload accepted")
	}
	if err := run(0, "", "naive", "", 16, 256, []string{"frobnicate"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}
