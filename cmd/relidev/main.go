// Command relidev is a client for a TCP-deployed reliable device: it
// joins the replica group as a site of its own (the user-state server of
// Figure 1 co-located with the client, so reads are local) and performs
// block reads and writes against the replicated device.
//
// Usage:
//
//	relidev -id 0 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002 \
//	        -scheme naive write 7 "hello replicated world"
//	relidev ... read 7
//	relidev ... status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"relidev"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this client's site id")
		peersF    = flag.String("peers", "", "comma-separated id=host:port for every site, including this one")
		schemeF   = flag.String("scheme", "naive", "consistency scheme: voting, ac, naive")
		storePath = flag.String("store", "", "path of the local block image (empty = in-memory)")
		blocks    = flag.Int("blocks", 128, "number of blocks")
		blockSize = flag.Int("blocksize", 512, "block size in bytes")
	)
	flag.Parse()
	if err := run(*id, *peersF, *schemeF, *storePath, *blocks, *blockSize, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "relidev:", err)
		os.Exit(1)
	}
}

func run(id int, peersF, schemeF, storePath string, blocks, blockSize int, args []string) error {
	if len(args) == 0 {
		return errors.New("missing command: read <block> | write <block> <text> | status")
	}
	peers := make(map[int]string)
	for _, part := range strings.Split(peersF, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, addr, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("peer %q is not id=addr", part)
		}
		n, err := strconv.Atoi(idStr)
		if err != nil {
			return fmt.Errorf("peer id %q: %w", idStr, err)
		}
		peers[n] = addr
	}
	var scheme relidev.Scheme
	switch schemeF {
	case "voting":
		scheme = relidev.Voting
	case "ac", "available-copy":
		scheme = relidev.AvailableCopy
	case "naive":
		scheme = relidev.NaiveAvailableCopy
	default:
		return fmt.Errorf("unknown scheme %q", schemeF)
	}
	if _, ok := peers[id]; !ok {
		// The client is a site too; give it an ephemeral local address
		// when the operator listed only the remote servers.
		peers[id] = "127.0.0.1:0"
	}
	site, err := relidev.OpenRemote(relidev.RemoteConfig{
		Self:      id,
		Peers:     peers,
		Scheme:    scheme,
		Geometry:  relidev.Geometry{BlockSize: blockSize, NumBlocks: blocks},
		StorePath: storePath,
		Timeout:   3 * time.Second,
	})
	if err != nil {
		return err
	}
	defer site.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dev := site.Device()

	switch args[0] {
	case "read":
		if len(args) != 2 {
			return errors.New("usage: read <block>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		data, err := dev.ReadBlock(ctx, relidev.Index(idx))
		if err != nil {
			return err
		}
		fmt.Printf("block %d: %q\n", idx, strings.TrimRight(string(data), "\x00"))
		return nil
	case "write":
		if len(args) != 3 {
			return errors.New("usage: write <block> <text>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		payload := make([]byte, blockSize)
		copy(payload, args[2])
		if err := dev.WriteBlock(ctx, relidev.Index(idx), payload); err != nil {
			return err
		}
		fmt.Printf("block %d written (%d bytes of payload)\n", idx, len(args[2]))
		return nil
	case "status":
		fmt.Printf("local site %d: %v, listening on %s\n", id, site.State(), site.Addr())
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
