package main

import "testing"

func TestRunAvailabilityAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "naive"} {
		if err := run("availability", scheme, 3, 0.1, 5000, "multicast", 0, 0, 1); err != nil {
			t.Fatalf("availability %s: %v", scheme, err)
		}
	}
}

func TestRunTrafficAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "naive"} {
		for _, net := range []string{"multicast", "unicast"} {
			if err := run("traffic", scheme, 4, 0.05, 0, net, 300, 2.5, 1); err != nil {
				t.Fatalf("traffic %s/%s: %v", scheme, net, err)
			}
		}
	}
}

func TestRunRepairOrder(t *testing.T) {
	if err := runRepairOrder(3, 0.3, 1, 20000, 1); err != nil {
		t.Fatal(err)
	}
	if err := runRepairOrder(3, 0.3, 8, 20000, 1); err != nil {
		t.Fatal(err)
	}
	if err := runRepairOrder(3, 0.3, 0, 20000, 1); err == nil {
		t.Fatal("shape 0 accepted")
	}
	if err := runRepairOrder(1, 0.3, 1, 20000, 1); err == nil {
		t.Fatal("single site accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("nope", "ac", 3, 0.1, 100, "multicast", 0, 0, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run("availability", "nope", 3, 0.1, 100, "multicast", 0, 0, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run("traffic", "ac", 3, 0.1, 100, "carrier-pigeon", 100, 2, 1); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run("traffic", "nope", 3, 0.1, 100, "multicast", 100, 2, 1); err == nil {
		t.Fatal("unknown traffic scheme accepted")
	}
	if err := run("availability", "ac", 0, 0.1, 100, "multicast", 0, 0, 1); err == nil {
		t.Fatal("zero sites accepted")
	}
}
