package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunAvailabilityAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "naive"} {
		if err := run(io.Discard, false, "availability", scheme, 3, 0.1, 5000, "multicast", 0, 0, 1); err != nil {
			t.Fatalf("availability %s: %v", scheme, err)
		}
	}
}

func TestRunTrafficAllSchemes(t *testing.T) {
	for _, scheme := range []string{"voting", "ac", "naive"} {
		for _, net := range []string{"multicast", "unicast"} {
			if err := run(io.Discard, false, "traffic", scheme, 4, 0.05, 0, net, 300, 2.5, 1); err != nil {
				t.Fatalf("traffic %s/%s: %v", scheme, net, err)
			}
		}
	}
}

// TestRunTrafficJSONCarriesObservability pins the machine-readable
// report shape: the metrics snapshot and the §5 bracket conformance
// verdict ride along with the measured traffic.
func TestRunTrafficJSONCarriesObservability(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true, "traffic", "voting", 4, 0.05, 0, "multicast", 300, 2.5, 1); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Kind        string `json:"kind"`
		Scheme      string `json:"scheme"`
		Conformance *struct {
			OK     bool `json:"ok"`
			Strict bool `json:"strict"`
		} `json:"conformance"`
		Metrics *struct {
			Counters []json.RawMessage `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rep.Kind != "traffic" || rep.Scheme != "voting" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Conformance == nil || !rep.Conformance.OK || rep.Conformance.Strict {
		t.Fatalf("conformance verdict: %+v\n%s", rep.Conformance, buf.String())
	}
	if rep.Metrics == nil || len(rep.Metrics.Counters) == 0 {
		t.Fatal("metrics snapshot missing or empty")
	}
}

func TestRunAvailabilityJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true, "availability", "ac", 3, 0.1, 5000, "multicast", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"analytic_availability"`) {
		t.Fatalf("availability JSON incomplete:\n%s", buf.String())
	}
}

func TestRunRepairOrder(t *testing.T) {
	if err := runRepairOrder(3, 0.3, 1, 20000, 1); err != nil {
		t.Fatal(err)
	}
	if err := runRepairOrder(3, 0.3, 8, 20000, 1); err != nil {
		t.Fatal(err)
	}
	if err := runRepairOrder(3, 0.3, 0, 20000, 1); err == nil {
		t.Fatal("shape 0 accepted")
	}
	if err := runRepairOrder(1, 0.3, 1, 20000, 1); err == nil {
		t.Fatal("single site accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(io.Discard, false, "nope", "ac", 3, 0.1, 100, "multicast", 0, 0, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run(io.Discard, false, "availability", "nope", 3, 0.1, 100, "multicast", 0, 0, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run(io.Discard, false, "traffic", "ac", 3, 0.1, 100, "carrier-pigeon", 100, 2, 1); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(io.Discard, false, "traffic", "nope", 3, 0.1, 100, "multicast", 100, 2, 1); err == nil {
		t.Fatal("unknown traffic scheme accepted")
	}
	if err := run(io.Discard, false, "availability", "ac", 0, 0.1, 100, "multicast", 0, 0, 1); err == nil {
		t.Fatal("zero sites accepted")
	}
}
