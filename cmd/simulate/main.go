// Command simulate runs the discrete-event experiments: stochastic
// availability measurements against the §4 formulas, and concrete
// protocol traffic measurements against the §5 cost model.
//
// Usage:
//
//	simulate -kind availability -scheme ac -sites 3 -rho 0.1 -horizon 500000
//	simulate -kind traffic -scheme voting -sites 5 -rho 0.05 -net unicast
//	simulate -kind traffic -scheme ac -json   # metrics + §5 conformance
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"relidev/internal/analysis"
	"relidev/internal/core"
	"relidev/internal/obs"
	"relidev/internal/obs/avail"
	"relidev/internal/sim"
	"relidev/internal/simnet"
)

func main() {
	var (
		kind    = flag.String("kind", "availability", "experiment: availability or traffic")
		schemeF = flag.String("scheme", "naive", "scheme: voting, ac, naive")
		sites   = flag.Int("sites", 3, "number of replica sites")
		rho     = flag.Float64("rho", 0.05, "failure-to-repair rate ratio")
		horizon = flag.Float64("horizon", 500000, "simulated time units (availability)")
		netF    = flag.String("net", "multicast", "network flavour: multicast or unicast (traffic)")
		ops     = flag.Int("ops", 10000, "operations to issue (traffic)")
		ratio   = flag.Float64("ratio", 2.5, "read:write ratio (traffic)")
		seed    = flag.Int64("seed", 1, "random seed")
		shape   = flag.Int("shape", 1, "Erlang stages of the repair time distribution; 1 = exponential (repairorder)")
		asJSON  = flag.Bool("json", false, "emit JSON (traffic runs include the metrics snapshot and §5 conformance)")
	)
	flag.Parse()
	if *kind == "repairorder" {
		if err := runRepairOrder(*sites, *rho, *shape, *horizon, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *asJSON, *kind, *schemeF, *sites, *rho, *horizon, *netF, *ops, *ratio, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, asJSON bool, kind, schemeName string, sites int, rho, horizon float64, netName string, ops int, ratio float64, seed int64) error {
	switch kind {
	case "availability":
		return runAvailability(w, asJSON, schemeName, sites, rho, horizon, seed)
	case "traffic":
		return runTraffic(w, asJSON, schemeName, sites, rho, netName, ops, ratio, seed)
	default:
		return fmt.Errorf("unknown experiment kind %q", kind)
	}
}

// runRepairOrder reproduces the §4.4 discussion: with repair-time
// coefficients of variation below one, the naive scheme's total-failure
// outages increasingly coincide with the conventional scheme's.
func runRepairOrder(sites int, rho float64, shape int, horizon float64, seed int64) error {
	if shape < 1 {
		return fmt.Errorf("shape %d must be >= 1", shape)
	}
	var dist sim.Dist = sim.Exponential{Rate: 1}
	if shape > 1 {
		dist = sim.Erlang{K: shape, Mean: 1}
	}
	res, err := sim.MeasureRepairOrder(sim.RepairOrderConfig{
		Sites:   sites,
		Rho:     rho,
		Repair:  dist,
		Horizon: horizon,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("sites=%d rho=%g repair=%s (CV=%.2f) horizon=%g\n",
		sites, rho, dist.Name(), dist.CV(), horizon)
	fmt.Printf("  total-failure episodes:          %d\n", res.Episodes)
	fmt.Printf("  naive outage == AC outage:       %.1f%% of episodes\n", 100*res.FractionMatched())
	fmt.Printf("  mean outage, available copy:     %.4f time units\n", res.MeanOutageAC)
	fmt.Printf("  mean outage, naive:              %.4f time units\n", res.MeanOutageNaive)
	return nil
}

func runAvailability(w io.Writer, asJSON bool, schemeName string, sites int, rho, horizon float64, seed int64) error {
	var (
		model    sim.Model
		analytic float64
		err      error
	)
	switch schemeName {
	case "voting":
		model, err = sim.NewVotingModel(sites)
		if err == nil {
			analytic, err = analysis.AvailabilityVoting(sites, rho)
		}
	case "ac":
		model, err = sim.NewACModel(sites)
		if err == nil {
			analytic, err = analysis.AvailabilityAC(sites, rho)
		}
	case "naive":
		model, err = sim.NewNaiveModel(sites)
		if err == nil {
			analytic, err = analysis.AvailabilityNaive(sites, rho)
		}
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	if err != nil {
		return err
	}
	res, err := sim.SimulateAvailability(model, sites, rho, horizon, seed)
	if err != nil {
		return err
	}
	verdict, err := availVerdict(schemeName, sites, rho, horizon, seed)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Kind     string                 `json:"kind"`
			Scheme   string                 `json:"scheme"`
			Sites    int                    `json:"sites"`
			Rho      float64                `json:"rho"`
			Horizon  float64                `json:"horizon"`
			Seed     int64                  `json:"seed"`
			Result   sim.AvailabilityResult `json:"result"`
			Analytic float64                `json:"analytic_availability"`
			Verdict  *avail.Report          `json:"verdict"`
		}{"availability", schemeName, sites, rho, horizon, seed, res, analytic, verdict})
	}
	fmt.Fprintf(w, "scheme=%s sites=%d rho=%g horizon=%g failures=%d\n",
		schemeName, sites, rho, horizon, res.Failures)
	fmt.Fprintf(w, "  simulated availability: %.9f\n", res.Availability)
	fmt.Fprintf(w, "  analytic  availability: %.9f (§4)\n", analytic)
	fmt.Fprintf(w, "  simulated unavailability: %.3e vs analytic %.3e\n",
		1-res.Availability, 1-analytic)
	fmt.Fprintf(w, "  mean participating sites: %.4f\n", res.MeanAvailableSites)
	state := "OK"
	if !verdict.OK {
		state = "VIOLATED"
	}
	fmt.Fprintf(w, "  empirical-vs-predicted verdict: %s (Markov at measured rates lambda=%.4f mu=%.4f)\n",
		state, verdict.Lambda, verdict.Mu)
	return nil
}

// availVerdict replays the same seeded failure process through the
// availability observatory and checks §4 Markov conformance at the
// *measured* rates — the same judgement cmd/chaos applies to a live
// cluster, here for the pure state-machine models.
func availVerdict(schemeName string, sites int, rho, horizon float64, seed int64) (*avail.Report, error) {
	obsName := schemeName
	if schemeName == "ac" {
		obsName = "available-copy"
	}
	est, err := avail.New(sites, obsName)
	if err != nil {
		return nil, err
	}
	proc, err := sim.NewFailureProcess(sites, rho, 1, seed)
	if err != nil {
		return nil, err
	}
	for {
		ev, ok := proc.Next()
		if !ok || ev.At >= horizon {
			break
		}
		if ev.Kind == sim.EventFail {
			est.SiteDown(ev.Site, ev.At)
		} else {
			est.SiteUp(ev.Site, ev.At)
		}
	}
	rep, err := avail.CheckConformance(est.Snapshot(horizon), 0.02, false)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

func runTraffic(w io.Writer, asJSON bool, schemeName string, sites int, rho float64, netName string, ops int, ratio float64, seed int64) error {
	var kind core.SchemeKind
	var aScheme analysis.Scheme
	switch schemeName {
	case "voting":
		kind, aScheme = core.Voting, analysis.SchemeVoting
	case "ac":
		kind, aScheme = core.AvailableCopy, analysis.SchemeAvailableCopy
	case "naive":
		kind, aScheme = core.NaiveAvailableCopy, analysis.SchemeNaive
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	var mode simnet.Mode
	var costs analysis.Costs
	var err error
	switch netName {
	case "multicast":
		mode = simnet.Multicast
		costs, err = analysis.MulticastCosts(aScheme, sites, rho)
	case "unicast":
		mode = simnet.Unicast
		costs, err = analysis.UnicastCosts(aScheme, sites, rho)
	default:
		return fmt.Errorf("unknown network flavour %q", netName)
	}
	if err != nil {
		return err
	}
	// The observer rides along only for JSON runs: the snapshot and the
	// §5 conformance verdict become part of the machine-readable report.
	var o *obs.Observer
	if asJSON {
		o = obs.New(obs.WithClock(obs.NewLogicalClock(1).Now))
	}
	res, err := sim.SimulateTraffic(context.Background(), sim.TrafficConfig{
		Scheme:    kind,
		Sites:     sites,
		Rho:       rho,
		Mode:      mode,
		ReadRatio: ratio,
		Ops:       ops,
		Seed:      seed,
		Observer:  o,
	})
	if err != nil {
		return err
	}
	if asJSON {
		snap := o.Snapshot()
		tx := make(map[string]uint64, len(res.NetStats.ByOp))
		for op, s := range res.NetStats.ByOp {
			tx[op] = s.Transmissions
		}
		wObs, rObs, recObs := obs.GatherObservations(snap, kind.String(), tx)
		// Bracket mode: the stochastic schedule legitimately denies
		// operations (voting below quorum still pays for the vote round),
		// so per-attempt envelopes are the honest check here.
		conf, err := obs.CheckConformance(obs.ConformanceInput{
			Scheme:   aScheme,
			Sites:    sites,
			Unicast:  mode == simnet.Unicast,
			Write:    wObs,
			Read:     rObs,
			Recovery: recObs,
		}, false)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Kind        string                 `json:"kind"`
			Scheme      string                 `json:"scheme"`
			Sites       int                    `json:"sites"`
			Rho         float64                `json:"rho"`
			Net         string                 `json:"net"`
			Ops         int                    `json:"ops"`
			Ratio       float64                `json:"ratio"`
			Seed        int64                  `json:"seed"`
			Result      sim.TrafficResult      `json:"result"`
			Model       analysis.Costs         `json:"model"`
			Conformance *obs.ConformanceReport `json:"conformance"`
			Metrics     *obs.Snapshot          `json:"metrics"`
		}{"traffic", schemeName, sites, rho, netName, ops, ratio, seed, res, costs, &conf, &snap})
	}
	fmt.Fprintf(w, "scheme=%s sites=%d rho=%g net=%s ops=%d ratio=%g\n",
		schemeName, sites, rho, netName, ops, ratio)
	fmt.Fprintf(w, "  writes=%d reads=%d denied=%d recoveries=%d op-availability=%.6f\n",
		res.Writes, res.Reads, res.Denied, res.Recoveries, res.OpAvailability)
	fmt.Fprintf(w, "  per-write:    measured %7.3f   model %7.3f (§5)\n", res.PerWrite, costs.Write)
	fmt.Fprintf(w, "  per-read:     measured %7.3f   model %7.3f\n", res.PerRead, costs.Read)
	fmt.Fprintf(w, "  per-recovery: measured %7.3f   model %7.3f\n", res.PerRecovery, costs.Recovery)
	return nil
}
