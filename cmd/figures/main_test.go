package main

import "testing"

func TestRunEveryFigure(t *testing.T) {
	for _, fig := range []string{"9", "10", "11", "12", "theorem", "costs", "witness", "equal-availability", "mttf"} {
		if err := run(fig, false, false, 40, 10, 1); err != nil {
			t.Fatalf("run(%q): %v", fig, err)
		}
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("11", true, false, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunAll(t *testing.T) {
	if err := run("all", false, false, 40, 8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSimulationOverlay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation overlay")
	}
	if err := run("9", false, true, 40, 8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", false, false, 40, 10, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
