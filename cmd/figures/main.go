// Command figures regenerates the figures of the paper's evaluation
// section (Figures 9-12), the Theorem 4.1 check, and the §5 cost table.
//
// Usage:
//
//	figures -fig 9            ASCII plot of Figure 9
//	figures -fig 11 -csv      CSV data for Figure 11
//	figures -fig all          everything, plots and tables
//	figures -fig theorem      Theorem 4.1 over a (n, rho) grid
//	figures -fig costs        §5 cost table
//	figures -fig 9 -sim       overlay simulated spot measurements
package main

import (
	"flag"
	"fmt"
	"os"

	"relidev/internal/analysis"
	"relidev/internal/figures"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "which figure: 9, 10, 11, 12, theorem, costs, witness, equal-availability, all")
		csv    = flag.Bool("csv", false, "emit CSV instead of an ASCII plot")
		sim    = flag.Bool("sim", false, "overlay simulated availability spot values (figures 9 and 10)")
		width  = flag.Int("width", 72, "plot width in characters")
		height = flag.Int("height", 20, "plot height in characters")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*fig, *csv, *sim, *width, *height, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(which string, csv, sim bool, width, height int, seed int64) error {
	printFig := func(f figures.Figure, nAC int) error {
		if sim && nAC > 0 {
			var err error
			f, err = figures.WithSimulation(f, nAC, 200000, seed)
			if err != nil {
				return err
			}
		}
		if csv {
			fmt.Print(figures.CSV(f))
		} else {
			fmt.Println(figures.Render(f, width, height))
		}
		return nil
	}

	show := func(id string) error {
		switch id {
		case "9":
			f, err := figures.Figure9()
			if err != nil {
				return err
			}
			return printFig(f, 3)
		case "10":
			f, err := figures.Figure10()
			if err != nil {
				return err
			}
			return printFig(f, 4)
		case "11":
			f, err := figures.Figure11()
			if err != nil {
				return err
			}
			return printFig(f, 0)
		case "12":
			f, err := figures.Figure12()
			if err != nil {
				return err
			}
			return printFig(f, 0)
		case "witness":
			f, err := figures.FigureWitness()
			if err != nil {
				return err
			}
			return printFig(f, 0)
		case "equal-availability", "equalavail":
			f, err := figures.FigureEqualAvailability()
			if err != nil {
				return err
			}
			return printFig(f, 0)
		case "theorem":
			rows, err := figures.Theorem41()
			if err != nil {
				return err
			}
			fmt.Println("Theorem 4.1: A_A(n) > A_V(2n-1) = A_V(2n) for rho <= 1")
			fmt.Println("   n    rho        A_A(n)       A_V(2n-1)  holds")
			for _, r := range rows {
				fmt.Printf("  %2d  %5.2f  %12.9f  %12.9f  %v\n", r.N, r.Rho, r.AC, r.Voting, r.Holds)
			}
			return nil
		case "mttf":
			fmt.Println("Mean time to first inaccessibility (units of mean repair time), rho = 0.05")
			fmt.Println("   n    MTTF voting      MTTF avail-copy   ratio")
			for n := 1; n <= 8; n++ {
				v, err := analysis.MTTFVoting(n, 0.05)
				if err != nil {
					return err
				}
				ac, err := analysis.MTTFAvailableCopy(n, 0.05)
				if err != nil {
					return err
				}
				fmt.Printf("  %2d  %14.4g  %16.4g  %6.4g\n", n, v, ac, ac/v)
			}
			return nil
		case "costs":
			rows, err := figures.CostTable([]int{2, 3, 4, 5, 6, 7, 8})
			if err != nil {
				return err
			}
			fmt.Println("§5 cost model at rho = 0.05 (high-level transmissions per operation)")
			fmt.Println("   n  mode       scheme              write     read  recovery")
			for _, r := range rows {
				fmt.Printf("  %2d  %-9s  %-16s  %7.3f  %7.3f  %8.3f\n",
					r.N, r.Mode, r.Scheme, r.Write, r.Read, r.Recovery)
			}
			return nil
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
	}

	if which == "all" {
		for _, id := range []string{"9", "10", "11", "12", "theorem", "costs", "witness", "equal-availability", "mttf"} {
			if err := show(id); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return show(which)
}
