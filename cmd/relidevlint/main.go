// Command relidevlint is the multichecker for the internal/lint
// analyzer suite (lockcheck, detcheck, transportcheck, ctxcheck).
//
// It speaks the `go vet -vettool` command-line protocol:
//
//	relidevlint -V=full        describe the executable for build caching
//	relidevlint -flags         describe flags in JSON
//	relidevlint unit.cfg       analyze one compilation unit
//
// Invoked with package patterns instead, it re-executes itself
// through the go tool, so both spellings work:
//
//	go vet -vettool=$(which relidevlint) ./...
//	relidevlint ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"relidev/internal/lint"
)

func main() {
	args := os.Args[1:]
	var cfgFile string
	var patterns []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			fatalf("unsupported flag value: %s (use -V=full)", arg)
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags: report an empty set so the go
			// tool passes none through.
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			// Ignore driver flags we do not implement (-json, -c=N).
		default:
			patterns = append(patterns, arg)
		}
	}
	switch {
	case cfgFile != "":
		os.Exit(runUnit(cfgFile))
	case len(patterns) > 0:
		reexecGoVet(patterns)
	default:
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=relidevlint ./... | relidevlint <packages>\n")
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "relidevlint: "+format+"\n", args...)
	os.Exit(1)
}

// printVersion implements the -V=full build-caching handshake: the
// go tool tracks the tool's identity by hashing the binary.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// reexecGoVet turns `relidevlint ./...` into the canonical
// `go vet -vettool=<self> ./...` invocation.
func reexecGoVet(patterns []string) {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fatalf("%v", err)
	}
}

// vetConfig mirrors the JSON compilation-unit description the go
// tool hands to vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit and returns the process exit
// code (0 clean, 1 findings).
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("cannot decode config %s: %v", cfgFile, err)
	}

	// The go tool always expects a facts file, even though this
	// suite exports none.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fatalf("%v", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, no diagnostics, so skip the
		// type-check entirely.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	// Resolve imports from the export data the build system already
	// produced, honoring the vendor map.
	compilerImporter := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fatalf("%v", err)
	}

	diags := lint.Run(&lint.Package{Fset: fset, Files: files, Types: pkg, Info: info}, lint.Analyzers())
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return 1
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
