package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"relidev"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=host:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0] != "127.0.0.1:7000" || peers[2] != "host:7002" {
		t.Fatalf("peers = %v", peers)
	}
	if _, err := parsePeers(""); err == nil {
		t.Fatal("empty peers accepted")
	}
	if _, err := parsePeers("0:127.0.0.1"); err == nil {
		t.Fatal("malformed entry accepted")
	}
	if _, err := parsePeers("x=127.0.0.1:1"); err == nil {
		t.Fatal("non-numeric id accepted")
	}
}

func TestParseScheme(t *testing.T) {
	tests := map[string]bool{
		"voting": true, "ac": true, "available-copy": true, "naive": true,
		"paxos": false, "": false,
	}
	for in, ok := range tests {
		_, err := parseScheme(in)
		if (err == nil) != ok {
			t.Fatalf("parseScheme(%q) err = %v, want ok=%v", in, err, ok)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(0, "", "naive", "", "", 0, 0, 8, 256, false, "", "", 0, false); err == nil {
		t.Fatal("missing peers accepted")
	}
	if err := run(0, "0=127.0.0.1:0", "bogus", "", "", 0, 0, 8, 256, false, "", "", 0, false); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if err := run(1, "0=127.0.0.1:0", "naive", "", "", 0, 0, 8, 256, false, "", "", 0, false); err == nil {
		t.Fatal("id missing from peer map accepted")
	}
}

func TestStoreDesc(t *testing.T) {
	if storeDesc("", "") != "in-memory store" || storeDesc("/x", "") != "/x" {
		t.Fatal("storeDesc mismatch")
	}
	if storeDesc("/x", "/d") != "segment store /d" || storeDesc("", "/d") != "segment store /d" {
		t.Fatal("storeDesc segment-dir mismatch")
	}
}

// TestDebugSurfaceServesMetrics is the -debug-addr integration test: a
// real three-site TCP deployment with site 0 metered, a replicated
// write, then the debug endpoints checked over actual HTTP — JSON
// metrics, Prometheus text, the trace ring, and pprof.
func TestDebugSurfaceServesMetrics(t *testing.T) {
	ctx := context.Background()
	geom := relidev.Geometry{BlockSize: 64, NumBlocks: 8}

	// Reserve loopback addresses with a bootstrap pass on :0.
	addrs := make(map[int]string, 3)
	for i := 0; i < 3; i++ {
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self:     i,
			Peers:    map[int]string{i: "127.0.0.1:0"},
			Scheme:   relidev.NaiveAvailableCopy,
			Geometry: geom,
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = s.Addr()
		s.Close()
	}
	sites := make([]*relidev.RemoteSite, 3)
	for i := 0; i < 3; i++ {
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self:     i,
			Peers:    addrs,
			Scheme:   relidev.NaiveAvailableCopy,
			Geometry: geom,
			Timeout:  time.Second,
			Metered:  i == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		defer s.Close()
	}

	srv, ln, err := serveDebug(sites[0], "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	payload := make([]byte, geom.BlockSize)
	copy(payload, "observed write")
	if err := sites[0].Device().WriteBlock(ctx, 3, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := sites[0].Device().ReadBlock(ctx, 3); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /metrics: a JSON snapshot with the write's counter series.
	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/metrics content type %q", ctype)
	}
	var snap struct {
		Counters []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  uint64            `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	var sawWrite bool
	for _, c := range snap.Counters {
		if c.Name == "relidev_op_completions_total" && c.Labels["op"] == "write" && c.Labels["scheme"] == "naive" && c.Value > 0 {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Errorf("write not visible in /metrics:\n%s", body)
	}

	// /metrics.prom: the same series in Prometheus text format.
	body, ctype = get("/metrics.prom")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics.prom content type %q", ctype)
	}
	if !strings.Contains(body, `relidev_op_completions_total{op="write",scheme="naive",site="site0"} 1`) {
		t.Errorf("write series missing from Prometheus exposition:\n%s", body)
	}

	// /trace: the ring retained the operation spans.
	body, _ = get("/trace")
	if !strings.Contains(body, `"op_start"`) || !strings.Contains(body, `"op_end"`) {
		t.Errorf("trace missing op spans:\n%s", body)
	}

	// /debug/pprof/: the standard profiling index and a sub-handler.
	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("pprof index unexpected:\n%s", body)
	}
	get("/debug/pprof/cmdline")

	// An unmetered site has no debug surface to serve.
	if _, err := sites[1].DebugHandler(); err == nil {
		t.Error("unmetered site offered a debug handler")
	}
}

// TestClusterTraceStitchesCrossSiteWrite is the distributed-tracing
// acceptance test: a real three-site TCP deployment with every site
// metered, one replicated write, then /trace/cluster on the
// coordinator fetched over actual HTTP. The merged rings must stitch
// into a single complete span tree for the write, with spans recorded
// by every participating site.
func TestClusterTraceStitchesCrossSiteWrite(t *testing.T) {
	ctx := context.Background()
	geom := relidev.Geometry{BlockSize: 64, NumBlocks: 8}

	addrs := make(map[int]string, 3)
	for i := 0; i < 3; i++ {
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self:     i,
			Peers:    map[int]string{i: "127.0.0.1:0"},
			Scheme:   relidev.AvailableCopy,
			Geometry: geom,
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = s.Addr()
		s.Close()
	}
	sites := make([]*relidev.RemoteSite, 3)
	for i := 0; i < 3; i++ {
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self:     i,
			Peers:    addrs,
			Scheme:   relidev.AvailableCopy,
			Geometry: geom,
			Timeout:  time.Second,
			Metered:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		defer s.Close()
	}

	// Peers serve plain debug surfaces; the coordinator's aggregates
	// their /trace rings behind /trace/cluster.
	peerURLs := make([]string, 0, 2)
	for i := 1; i < 3; i++ {
		srv, ln, err := serveDebug(sites[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		peerURLs = append(peerURLs, "http://"+ln.Addr().String()+"/trace")
	}
	srv, ln, err := serveDebug(sites[0], "127.0.0.1:0", peerURLs)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	payload := make([]byte, geom.BlockSize)
	copy(payload, "traced write")
	if err := sites[0].Device().WriteBlock(ctx, 5, payload); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + ln.Addr().String() + "/trace/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace/cluster status %d\n%s", resp.StatusCode, body)
	}
	var out struct {
		Traces []struct {
			TraceID uint64 `json:"trace_id"`
			Root    *struct {
				Site int    `json:"site"`
				Op   string `json:"op"`
				Kind string `json:"kind"`
			} `json:"root"`
			Orphans []json.RawMessage `json:"orphans"`
			Sites   []int             `json:"sites"`
			Spans   int               `json:"spans"`
		} `json:"traces"`
		Errors map[string]string `json:"errors"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/trace/cluster is not JSON: %v\n%s", err, body)
	}
	if len(out.Errors) != 0 {
		t.Fatalf("peer trace fetches failed: %v", out.Errors)
	}

	// Exactly one write operation ran, so exactly one tree roots an "op"
	// span for a write at site 0 — complete (no orphans) and spanning
	// every site the replicated write touched.
	var found int
	for _, tr := range out.Traces {
		if tr.Root == nil || tr.Root.Kind != "op" || tr.Root.Op != "write" {
			continue
		}
		found++
		if tr.Root.Site != 0 {
			t.Errorf("write rooted at site %d, want 0", tr.Root.Site)
		}
		if len(tr.Orphans) != 0 {
			t.Errorf("write tree has %d orphaned spans:\n%s", len(tr.Orphans), body)
		}
		if len(tr.Sites) != 3 || tr.Sites[0] != 0 || tr.Sites[1] != 1 || tr.Sites[2] != 2 {
			t.Errorf("write tree sites = %v, want [0 1 2]", tr.Sites)
		}
		// At minimum: the op span, the broadcast fan-out's rpc span, and
		// one handle span per remote peer (contributed by the peers'
		// rings — proof the wire carried the span context).
		if tr.Spans < 4 {
			t.Errorf("write tree has only %d spans:\n%s", tr.Spans, body)
		}
	}
	if found != 1 {
		t.Fatalf("stitched %d write trees, want exactly 1:\n%s", found, body)
	}
}
