package main

import "testing"

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=host:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0] != "127.0.0.1:7000" || peers[2] != "host:7002" {
		t.Fatalf("peers = %v", peers)
	}
	if _, err := parsePeers(""); err == nil {
		t.Fatal("empty peers accepted")
	}
	if _, err := parsePeers("0:127.0.0.1"); err == nil {
		t.Fatal("malformed entry accepted")
	}
	if _, err := parsePeers("x=127.0.0.1:1"); err == nil {
		t.Fatal("non-numeric id accepted")
	}
}

func TestParseScheme(t *testing.T) {
	tests := map[string]bool{
		"voting": true, "ac": true, "available-copy": true, "naive": true,
		"paxos": false, "": false,
	}
	for in, ok := range tests {
		_, err := parseScheme(in)
		if (err == nil) != ok {
			t.Fatalf("parseScheme(%q) err = %v, want ok=%v", in, err, ok)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(0, "", "naive", "", 8, 256, false); err == nil {
		t.Fatal("missing peers accepted")
	}
	if err := run(0, "0=127.0.0.1:0", "bogus", "", 8, 256, false); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if err := run(1, "0=127.0.0.1:0", "naive", "", 8, 256, false); err == nil {
		t.Fatal("id missing from peer map accepted")
	}
}

func TestStoreDesc(t *testing.T) {
	if storeDesc("") != "in-memory store" || storeDesc("/x") != "/x" {
		t.Fatal("storeDesc mismatch")
	}
}
