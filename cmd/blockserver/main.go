// Command blockserver runs one replica site of a reliable device as a
// standalone server process — the deployment of §1: "a set of server
// processes on several sites".
//
// Usage:
//
//	blockserver -id 0 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002 \
//	            -scheme naive -store /var/tmp/site0.img -blocks 256 -blocksize 512
//
// When restarted after a crash pass -comatose so the site runs the
// scheme's recovery procedure (repeating it until it can complete)
// before serving data.
//
// Pass -store-dir to persist blocks in an append-only checksummed
// segment store instead of a flat image (crash recovery truncates a
// torn tail and replays the rest), and -commit-batch/-commit-delay to
// group-commit concurrent writes into shared fsyncs (DESIGN.md §12).
//
// Pass -debug-addr to expose the observability surface: /metrics
// (JSON), /metrics.prom (Prometheus text), /trace (recent protocol
// events), /profile (critical-path phase attribution), /healthz (the
// rule-driven health verdict; 503 once a critical alert is active),
// /debug/flight (the black-box flight recorder's sealed dump),
// /cluster/metrics (every site's registry scraped over the RPC plane
// and merged into one view), /timeseries (the local telemetry ring;
// cadence set by -telemetry-step), /slo (burn-rate evaluation of the
// default SLO set; 503 once an error budget is exhausted; disable with
// -slo=false), and the standard /debug/pprof/ handlers. relitop points
// at this address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"relidev"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this site's id (0..n-1)")
		peersF     = flag.String("peers", "", "comma-separated id=host:port for every site, including this one")
		schemeF    = flag.String("scheme", "naive", "consistency scheme: voting, ac, naive")
		storePath  = flag.String("store", "", "path of the block image file (empty = in-memory)")
		storeDir   = flag.String("store-dir", "", "directory for an append-only segment store (DESIGN.md \u00a712); takes precedence over -store")
		commitN    = flag.Int("commit-batch", 0, "group commit: coalesce up to this many concurrent writes into one fsync (0 = off)")
		commitWait = flag.Duration("commit-delay", 0, "group commit: how long a flush waits for more writers to join its batch (0 = opportunistic)")
		blocks     = flag.Int("blocks", 128, "number of blocks")
		blockSize  = flag.Int("blocksize", 512, "block size in bytes")
		comatose   = flag.Bool("comatose", false, "start comatose and run recovery (use after a crash)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /metrics.prom, /trace and /debug/pprof/ on this address (empty = off)")
		tracePeers = flag.String("trace-peers", "", "comma-separated peer /trace URLs; mounts /trace/cluster on the debug surface with the cluster-wide stitched view")
		teleStep   = flag.Duration("telemetry-step", time.Second, "telemetry sampling cadence for /timeseries and the SLO burn rates (0 = off; requires -debug-addr)")
		sloOn      = flag.Bool("slo", true, "attach the default SLO set (read latency, write availability, conformance drift, repair freshness) and serve /slo (requires -telemetry-step)")
	)
	flag.Parse()
	if err := run(*id, *peersF, *schemeF, *storePath, *storeDir, *commitN, *commitWait, *blocks, *blockSize, *comatose, *debugAddr, *tracePeers, *teleStep, *sloOn); err != nil {
		fmt.Fprintln(os.Stderr, "blockserver:", err)
		os.Exit(1)
	}
}

func parsePeers(s string) (map[int]string, error) {
	peers := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q is not id=addr", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("peer id %q: %w", id, err)
		}
		peers[n] = addr
	}
	if len(peers) == 0 {
		return nil, errors.New("no peers given (use -peers 0=host:port,...)")
	}
	return peers, nil
}

func parseScheme(s string) (relidev.Scheme, error) {
	switch s {
	case "voting":
		return relidev.Voting, nil
	case "ac", "available-copy":
		return relidev.AvailableCopy, nil
	case "naive":
		return relidev.NaiveAvailableCopy, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want voting, ac or naive)", s)
	}
}

func run(id int, peersF, schemeF, storePath, storeDir string, commitN int, commitWait time.Duration, blocks, blockSize int, comatose bool, debugAddr, tracePeers string, teleStep time.Duration, sloOn bool) error {
	peers, err := parsePeers(peersF)
	if err != nil {
		return err
	}
	scheme, err := parseScheme(schemeF)
	if err != nil {
		return err
	}
	cfg := relidev.RemoteConfig{
		Self:             id,
		Peers:            peers,
		Scheme:           scheme,
		Geometry:         relidev.Geometry{BlockSize: blockSize, NumBlocks: blocks},
		StorePath:        storePath,
		StoreDir:         storeDir,
		GroupCommitBatch: commitN,
		GroupCommitDelay: commitWait,
		Comatose:         comatose,
		Metered:          debugAddr != "",
	}
	if cfg.Metered {
		cfg.HealthRules = relidev.DefaultHealthRules(scheme, len(peers), nil)
		cfg.TelemetryStep = teleStep
		if sloOn && teleStep > 0 {
			// Budget the availability target from the paper's own §4
			// prediction for this deployment, like the chaos harness does.
			cfg.SLOs = relidev.DefaultSLOs(scheme, len(peers), 0.05, blocks,
				&relidev.RepairPolicy{})
		}
	}
	site, err := relidev.OpenRemote(cfg)
	if err != nil {
		return err
	}
	defer site.Close()
	fmt.Printf("site %d serving %s on %s (scheme %v, %dx%d)\n",
		id, storeDesc(storePath, storeDir), site.Addr(), scheme, blockSize, blocks)

	if debugAddr != "" {
		srv, ln, err := serveDebug(site, debugAddr, splitURLs(tracePeers))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("site %d debug surface on http://%s/metrics\n", id, ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if comatose {
		// Retry recovery until it completes or we are told to exit; with
		// the naive scheme after a total failure this loop is exactly the
		// "wait until all sites have recovered" of Figure 6.
		for site.State() != relidev.StateAvailable {
			err := site.Recover(ctx)
			switch {
			case err == nil:
				fmt.Println("recovery complete; site available")
			case errors.Is(err, relidev.ErrMustWait):
				fmt.Println("recovery waiting for more sites...")
				select {
				case <-time.After(2 * time.Second):
				case <-ctx.Done():
					return nil
				}
			default:
				return fmt.Errorf("recovery: %w", err)
			}
		}
	}

	<-ctx.Done()
	fmt.Println("shutting down")
	return nil
}

// serveDebug mounts the site's observability handler on its own
// listener and serves it in the background until the server is closed.
// With peer trace URLs it also mounts /trace/cluster, the cluster-wide
// stitched span-tree view.
func serveDebug(site *relidev.RemoteSite, addr string, tracePeers []string) (*http.Server, net.Listener, error) {
	h, err := site.DebugHandler()
	if err != nil {
		return nil, nil, err
	}
	if len(tracePeers) > 0 {
		cluster, err := site.ClusterTraceHandler(tracePeers)
		if err != nil {
			return nil, nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("/", h)
		mux.Handle("/trace/cluster", cluster)
		h = mux
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, ln, nil
}

func splitURLs(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			urls = append(urls, part)
		}
	}
	return urls
}

func storeDesc(path, dir string) string {
	switch {
	case dir != "":
		return "segment store " + dir
	case path != "":
		return path
	}
	return "in-memory store"
}
