// Command minifs is the userland toolset for the mini file system: it
// formats, checks and manipulates minifs images stored in ordinary files
// (the same images a blockserver site serves, so an image taken from a
// replica can be inspected offline).
//
// Usage:
//
//	minifs -image disk.img mkfs -blocks 1024 -blocksize 512
//	minifs -image disk.img write /docs/a.txt "contents"
//	minifs -image disk.img read /docs/a.txt
//	minifs -image disk.img ls /docs
//	minifs -image disk.img mkdir /docs/sub
//	minifs -image disk.img mv /docs/a.txt /docs/b.txt
//	minifs -image disk.img rm /docs/b.txt
//	minifs -image disk.img fsck
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"relidev/internal/block"
	"relidev/internal/core"
	"relidev/internal/minifs"
	"relidev/internal/store"
)

func main() {
	image := flag.String("image", "", "path of the file system image")
	flag.Parse()
	if err := run(*image, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "minifs:", err)
		os.Exit(1)
	}
}

func run(image string, args []string) error {
	if image == "" {
		return errors.New("missing -image")
	}
	if len(args) == 0 {
		return errors.New("missing command: mkfs, fsck, ls, read, write, mkdir, mv, rm")
	}
	ctx := context.Background()

	if args[0] == "mkfs" {
		return runMkfs(ctx, image, args[1:])
	}

	st, err := store.OpenFile(image)
	if err != nil {
		return fmt.Errorf("open image: %w", err)
	}
	defer st.Close()
	fs, err := minifs.Mount(ctx, core.NewLocalDevice(st))
	if err != nil {
		return err
	}

	switch cmd := args[0]; cmd {
	case "fsck":
		rep, err := fs.Check(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("files: %d  directories: %d  used blocks: %d  leaked blocks: %d\n",
			rep.Files, rep.Directories, rep.UsedBlocks, rep.LeakedBlocks)
		for _, e := range rep.Errors {
			fmt.Println("ERROR:", e)
		}
		if !rep.Ok() {
			return fmt.Errorf("%d consistency error(s)", len(rep.Errors))
		}
		fmt.Println("clean")
		return nil
	case "ls":
		path := "/"
		if len(args) > 1 {
			path = args[1]
		}
		ents, err := fs.ReadDir(ctx, path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %8d  %s\n", kind, e.Size, e.Name)
		}
		return nil
	case "read":
		if len(args) != 2 {
			return errors.New("usage: read <path>")
		}
		data, err := fs.ReadFile(ctx, args[1])
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil
	case "write":
		if len(args) != 3 {
			return errors.New("usage: write <path> <contents>")
		}
		return fs.WriteFile(ctx, args[1], []byte(args[2]))
	case "mkdir":
		if len(args) != 2 {
			return errors.New("usage: mkdir <path>")
		}
		return fs.MkdirAll(ctx, args[1])
	case "mv":
		if len(args) != 3 {
			return errors.New("usage: mv <old> <new>")
		}
		return fs.Rename(ctx, args[1], args[2])
	case "rm":
		if len(args) != 2 {
			return errors.New("usage: rm <path>")
		}
		return fs.Remove(ctx, args[1])
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func runMkfs(ctx context.Context, image string, args []string) error {
	fl := flag.NewFlagSet("mkfs", flag.ContinueOnError)
	blocks := fl.Int("blocks", 1024, "number of blocks")
	blockSize := fl.Int("blocksize", 512, "block size in bytes")
	if err := fl.Parse(args); err != nil {
		return err
	}
	st, err := store.CreateFile(image, block.Geometry{BlockSize: *blockSize, NumBlocks: *blocks})
	if err != nil {
		return err
	}
	defer st.Close()
	if _, err := minifs.Mkfs(ctx, core.NewLocalDevice(st)); err != nil {
		return err
	}
	if err := st.Sync(); err != nil {
		return err
	}
	fmt.Printf("formatted %s: %d blocks of %d bytes\n", image, *blocks, *blockSize)
	return nil
}
