package main

import (
	"path/filepath"
	"testing"
)

func TestFullWorkflow(t *testing.T) {
	img := filepath.Join(t.TempDir(), "disk.img")
	steps := [][]string{
		{"mkfs", "-blocks", "256", "-blocksize", "256"},
		{"mkdir", "/docs"},
		{"write", "/docs/a.txt", "hello image"},
		{"ls", "/docs"},
		{"read", "/docs/a.txt"},
		{"mv", "/docs/a.txt", "/docs/b.txt"},
		{"read", "/docs/b.txt"},
		{"fsck"},
		{"rm", "/docs/b.txt"},
		{"fsck"},
		{"ls", "/"},
	}
	for _, step := range steps {
		if err := run(img, step); err != nil {
			t.Fatalf("%v: %v", step, err)
		}
	}
}

func TestPersistenceAcrossInvocations(t *testing.T) {
	// Each run() opens the image fresh — state persists like a real disk.
	img := filepath.Join(t.TempDir(), "disk.img")
	if err := run(img, []string{"mkfs", "-blocks", "128", "-blocksize", "256"}); err != nil {
		t.Fatal(err)
	}
	if err := run(img, []string{"write", "/persist", "still here"}); err != nil {
		t.Fatal(err)
	}
	if err := run(img, []string{"read", "/persist"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	img := filepath.Join(t.TempDir(), "disk.img")
	if err := run("", []string{"fsck"}); err == nil {
		t.Fatal("missing image accepted")
	}
	if err := run(img, nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run(img, []string{"fsck"}); err == nil {
		t.Fatal("fsck on missing image succeeded")
	}
	if err := run(img, []string{"mkfs"}); err != nil {
		t.Fatal(err)
	}
	if err := run(img, []string{"frobnicate"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(img, []string{"read"}); err == nil {
		t.Fatal("read without path accepted")
	}
	if err := run(img, []string{"read", "/nope"}); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if err := run(img, []string{"write", "/x"}); err == nil {
		t.Fatal("write without contents accepted")
	}
	if err := run(img, []string{"mkdir"}); err == nil {
		t.Fatal("mkdir without path accepted")
	}
	if err := run(img, []string{"mv", "/a"}); err == nil {
		t.Fatal("mv without destination accepted")
	}
	if err := run(img, []string{"rm"}); err == nil {
		t.Fatal("rm without path accepted")
	}
}
