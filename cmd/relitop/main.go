// Command relitop is a live, top-like dashboard over a relidev
// deployment's telemetry plane. Point it at any site's -debug-addr; on
// every refresh it scrapes /cluster/metrics (that site's TelemetryPull
// broadcast, merged into one cluster view) and /slo (the burn-rate
// evaluation) and renders per-scheme throughput, latency and
// critical-path phase breakdown, quorum margin, repair lag, and the
// firing alerts.
//
// Usage:
//
//	relitop -addr http://127.0.0.1:9000            # live, refresh every 2s
//	relitop -addr http://127.0.0.1:9000 -once      # one frame, no ANSI (CI smoke)
//
// Rates are deltas between successive scrapes; the first frame (and
// -once mode) shows run totals only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"relidev/internal/obs"
	"relidev/internal/obs/slo"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:9000", "base URL of a site's debug surface (blockserver -debug-addr)")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
		once     = flag.Bool("once", false, "render a single frame without ANSI control codes and exit")
	)
	flag.Parse()
	if err := run(os.Stdout, *addr, *interval, *timeout, *once); err != nil {
		fmt.Fprintln(os.Stderr, "relitop:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, addr string, interval, timeout time.Duration, once bool) error {
	client := &http.Client{Timeout: timeout}
	base := strings.TrimRight(addr, "/")
	cur, err := collect(client, base)
	if err != nil {
		return err
	}
	render(w, nil, cur)
	if once {
		return nil
	}
	for {
		time.Sleep(interval)
		next, err := collect(client, base)
		if err != nil {
			// A scrape miss is a blip, not a reason to tear the
			// dashboard down — keep the last frame and retry.
			fmt.Fprintf(w, "scrape failed: %v (retrying)\n", err)
			continue
		}
		fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
		render(w, cur, next)
		cur = next
	}
}

// A frame is one scrape of the telemetry plane.
type frame struct {
	at      time.Time
	metrics obs.Snapshot
	scrapes map[string]string // per-site scrape errors from the aggregator
	slo     *slo.Report       // nil when the deployment runs without SLOs
}

func collect(c *http.Client, base string) (*frame, error) {
	f := &frame{at: time.Now()}
	resp, err := c.Get(base + "/cluster/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/cluster/metrics: status %d", base, resp.StatusCode)
	}
	var view obs.ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("decode cluster metrics: %w", err)
	}
	f.metrics, f.scrapes = view.Metrics, view.Errors

	sresp, err := c.Get(base + "/slo")
	if err != nil {
		return nil, err
	}
	defer sresp.Body.Close()
	switch sresp.StatusCode {
	case http.StatusNotFound:
		// SLO engine disabled; the section stays off.
	case http.StatusOK, http.StatusServiceUnavailable:
		// 503 is an exhausted error budget, not a broken endpoint —
		// the report body is still the thing to show.
		var rep slo.Report
		if err := json.NewDecoder(sresp.Body).Decode(&rep); err != nil {
			return nil, fmt.Errorf("decode slo report: %w", err)
		}
		f.slo = &rep
	default:
		return nil, fmt.Errorf("%s/slo: status %d", base, sresp.StatusCode)
	}
	return f, nil
}

func render(w io.Writer, prev, cur *frame) {
	up, down, margin := siteCensus(cur)
	fmt.Fprintf(w, "relidev cluster — %d sites up, %d down (quorum margin %+d) — %s\n",
		up, down, margin, cur.at.Format(time.RFC3339))

	if cur.slo != nil {
		worst := 0.0
		for _, s := range cur.slo.SLOs {
			if s.BudgetSpent > worst {
				worst = s.BudgetSpent
			}
		}
		fmt.Fprintf(w, "slo: %d firing / %d objectives, overall %s, worst budget %.0f%% spent\n",
			cur.slo.Firing, len(cur.slo.SLOs), cur.slo.Overall, 100*worst)
		for _, s := range cur.slo.SLOs {
			if !s.Firing && !s.Exhausted {
				continue
			}
			state := "FIRING"
			if s.Exhausted {
				state = "EXHAUSTED"
			}
			fmt.Fprintf(w, "  ! %-40s %s  burn fast %.1fx slow %.1fx  budget %.0f%% spent\n",
				s.Name, state, s.FastBurn, s.SlowBurn, 100*s.BudgetSpent)
		}
	}

	prof := obs.CriticalPathOf(cur.metrics)
	rates := opRates(prev, cur)
	fmt.Fprintf(w, "\n%-8s %-9s %9s %9s %7s %9s %9s  %s\n",
		"SCHEME", "OP", "OPS/S", "TOTAL", "FAIL", "P50", "P99", "PHASES")
	sort.Slice(prof.Ops, func(i, j int) bool {
		if prof.Ops[i].Scheme != prof.Ops[j].Scheme {
			return prof.Ops[i].Scheme < prof.Ops[j].Scheme
		}
		return prof.Ops[i].Op < prof.Ops[j].Op
	})
	fails := counterBy(cur.metrics, obs.MetricOpFailures, "scheme", "op")
	for _, op := range prof.Ops {
		key := op.Scheme + "/" + op.Op
		rate := "-"
		if r, ok := rates[key]; ok {
			rate = fmt.Sprintf("%.1f", r)
		}
		fmt.Fprintf(w, "%-8s %-9s %9s %9d %7d %9s %9s  %s\n",
			op.Scheme, op.Op, rate, op.Count, fails[key],
			fmtNs(op.P50Ns), fmtNs(op.P99Ns), phaseSummary(op.Phases))
	}

	if lag, detail := repairLag(cur.metrics); detail != "" {
		fmt.Fprintf(w, "\nrepair lag: %d stale blocks (%s)\n", lag, detail)
	}
	if stale := counterBy(cur.metrics, obs.MetricStaleReads); stale[""] > 0 {
		fmt.Fprintf(w, "stale reads served: %d\n", stale[""])
	}
	if len(cur.scrapes) > 0 {
		keys := make([]string, 0, len(cur.scrapes))
		for k := range cur.scrapes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "\nscrape errors:\n")
		for _, k := range keys {
			fmt.Fprintf(w, "  %s: %s\n", k, cur.scrapes[k])
		}
	}
}

// siteCensus counts sites from the merged view (every distinct "site"
// label plus every site the scrape could not reach) and derives the
// quorum margin: reachable sites minus a majority of the whole census.
func siteCensus(f *frame) (up, down, margin int) {
	sites := map[string]bool{}
	forEachLabel(f.metrics, "site", func(s string) { sites[s] = true })
	for s := range f.scrapes {
		sites[s] = true
	}
	total := len(sites)
	down = len(f.scrapes)
	up = total - down
	margin = up - (total/2 + 1)
	return up, down, margin
}

func forEachLabel(s obs.Snapshot, label string, fn func(string)) {
	for _, c := range s.Counters {
		if v := c.Labels[label]; v != "" {
			fn(v)
		}
	}
	for _, g := range s.Gauges {
		if v := g.Labels[label]; v != "" {
			fn(v)
		}
	}
	for _, h := range s.Histograms {
		if v := h.Labels[label]; v != "" {
			fn(v)
		}
	}
}

// counterBy sums a counter family grouped by the given labels, keyed
// "l1/l2/..." (one ""-keyed total when no labels are given).
func counterBy(s obs.Snapshot, name string, labels ...string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, c := range s.Counters {
		if c.Name != name {
			continue
		}
		parts := make([]string, len(labels))
		for i, l := range labels {
			parts[i] = c.Labels[l]
		}
		out[strings.Join(parts, "/")] += c.Value
	}
	return out
}

// opRates computes completions per second per scheme/op between two
// frames; nil prev (first frame, -once) yields no rates.
func opRates(prev, cur *frame) map[string]float64 {
	if prev == nil {
		return nil
	}
	elapsed := cur.at.Sub(prev.at).Seconds()
	if elapsed <= 0 {
		return nil
	}
	before := counterBy(prev.metrics, obs.MetricOpCompletions, "scheme", "op")
	after := counterBy(cur.metrics, obs.MetricOpCompletions, "scheme", "op")
	rates := make(map[string]float64, len(after))
	for k, v := range after {
		rates[k] = float64(v-before[k]) / elapsed
	}
	return rates
}

// phaseSummary renders the top-level phases as "name share%" ordered by
// share, skipping sub-phases and dust under 1%.
func phaseSummary(phases []obs.PhaseStat) string {
	top := make([]obs.PhaseStat, 0, len(phases))
	for _, p := range phases {
		if !p.Sub && p.Share >= 0.01 {
			top = append(top, p)
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Share > top[j].Share })
	parts := make([]string, len(top))
	for i, p := range top {
		parts[i] = fmt.Sprintf("%s %.0f%%", p.Phase, 100*p.Share)
	}
	return strings.Join(parts, " | ")
}

// repairLag sums the per-site repair-lag gauges and lists the laggards.
func repairLag(s obs.Snapshot) (total int64, detail string) {
	var parts []string
	for _, g := range s.Gauges {
		if g.Name != obs.MetricRepairLag {
			continue
		}
		total += g.Value
		if g.Value > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", g.Labels["site"], g.Value))
		}
	}
	sort.Strings(parts)
	if total > 0 {
		detail = strings.Join(parts, " ")
	}
	return total, detail
}

func fmtNs(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.1fms", ns/1e6)
	}
	return fmt.Sprintf("%.2fs", ns/1e9)
}
