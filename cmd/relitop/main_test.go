package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relidev"
)

// startCluster serves a metered in-process cluster's debug surface —
// the same endpoints a blockserver exposes — and runs a small workload
// through it.
func startCluster(t *testing.T) *httptest.Server {
	t.Helper()
	pol := relidev.RepairPolicy{}
	c, err := relidev.New(3, relidev.Voting,
		relidev.WithTelemetry(time.Second, 64),
		relidev.WithSLOs(relidev.DefaultSLOs(relidev.Voting, 3, 0.05, 16, &pol)...),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, c.Geometry().BlockSize)
	copy(data, "relitop smoke")
	dev, err := c.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if err := dev.WriteBlock(ctx, relidev.Index(b), data); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.ReadBlock(ctx, relidev.Index(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SampleTelemetry(); err != nil {
		t.Fatal(err)
	}
	h, err := c.DebugHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// TestOnceRendersDashboard is the CI smoke path: one -once frame
// against a live debug surface must carry the site census, the SLO
// summary, and the per-op table with its critical-path phases.
func TestOnceRendersDashboard(t *testing.T) {
	srv := startCluster(t)
	var buf bytes.Buffer
	if err := run(&buf, srv.URL, time.Second, 5*time.Second, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"3 sites up, 0 down",
		"slo: 0 firing / 4 objectives",
		"SCHEME",
		"voting   write",
		"voting   read",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once frame carries ANSI control codes")
	}
	if strings.Contains(out, "scrape errors") {
		t.Errorf("healthy cluster shows scrape errors:\n%s", out)
	}
}

// TestOnceWithoutSLOEngine: a deployment without SLOs serves 404 on
// /slo; the dashboard drops the section instead of failing.
func TestOnceWithoutSLOEngine(t *testing.T) {
	c, err := relidev.New(3, relidev.AvailableCopy, relidev.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.DebugHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	var buf bytes.Buffer
	if err := run(&buf, srv.URL, time.Second, 5*time.Second, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "slo:") {
		t.Errorf("SLO section rendered without an engine:\n%s", buf.String())
	}
}

// TestOnceFailsWithoutServer: -once against a dead address must error
// so the CI smoke actually gates.
func TestOnceFailsWithoutServer(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "http://127.0.0.1:1", 0, 200*time.Millisecond, true); err == nil {
		t.Fatal("dead endpoint rendered a frame")
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[float64]string{
		0: "-", 500: "500ns", 2500: "2.5µs", 3.2e6: "3.2ms", 1.5e9: "1.50s",
	}
	for in, want := range cases {
		if got := fmtNs(in); got != want {
			t.Errorf("fmtNs(%v) = %q, want %q", in, got, want)
		}
	}
}
