package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	line := "BenchmarkParallelWrite/voting/n5/lat100us-1 \t 100\t  9000000 ns/op\t  111.7 ops/sec"
	r, ok := parseLine(line)
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "BenchmarkParallelWrite/voting/n5/lat100us" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Benchmark != "BenchmarkParallelWrite" || r.Scheme != "voting" || r.Sites != 5 || r.Latency != "lat100us" {
		t.Fatalf("decomposed = %+v", r)
	}
	if r.Iterations != 100 || r.NsPerOp != 9000000 || r.OpsPerSec != 111.7 {
		t.Fatalf("metrics = %+v", r)
	}
}

func TestParseLineRPCNameWithoutLatency(t *testing.T) {
	r, ok := parseLine("BenchmarkParallelWriteRPC/naive/n3-1  5000  42187 ns/op  23703 ops/sec")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Scheme != "naive" || r.Sites != 3 || r.Latency != "" {
		t.Fatalf("decomposed = %+v", r)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkParallelRead/voting/n3/lat0-1   416738   812.6 ns/op   1230630 ops/sec
PASS
ok  	relidev	1.0s
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Scheme != "voting" {
		t.Fatalf("results = %+v", results)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("accepted input without benchmark lines")
	}
}
