package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseLine(t *testing.T) {
	line := "BenchmarkParallelWrite/voting/n5/lat100us-1 \t 100\t  9000000 ns/op\t  111.7 ops/sec"
	r, ok := parseLine(line)
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "BenchmarkParallelWrite/voting/n5/lat100us" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Benchmark != "BenchmarkParallelWrite" || r.Scheme != "voting" || r.Sites != 5 || r.Latency != "lat100us" {
		t.Fatalf("decomposed = %+v", r)
	}
	if r.Iterations != 100 || r.NsPerOp != 9000000 || r.OpsPerSec != 111.7 {
		t.Fatalf("metrics = %+v", r)
	}
}

func TestParseLineRPCNameWithoutLatency(t *testing.T) {
	r, ok := parseLine("BenchmarkParallelWriteRPC/naive/n3-1  5000  42187 ns/op  23703 ops/sec")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Scheme != "naive" || r.Sites != 3 || r.Latency != "" {
		t.Fatalf("decomposed = %+v", r)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkParallelRead/voting/n3/lat0-1   416738   812.6 ns/op   1230630 ops/sec
PASS
ok  	relidev	1.0s
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Scheme != "voting" {
		t.Fatalf("results = %+v", results)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("accepted input without benchmark lines")
	}
}

func TestBaselineDiff(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_base.json")
	base := report{Benchmarks: []result{
		{Name: "BenchmarkParallelWrite/voting/n5/lat100us", NsPerOp: 2250000, OpsPerSec: 443},
		{Name: "BenchmarkParallelWrite/ac/n5/lat100us", NsPerOp: 500000, OpsPerSec: 2000},
		{Name: "BenchmarkGone/naive/n3", NsPerOp: 10},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadReport(basePath)
	if err != nil {
		t.Fatal(err)
	}
	current := []result{
		{Name: "BenchmarkParallelWrite/voting/n5/lat100us", NsPerOp: 150000, OpsPerSec: 6645},
		{Name: "BenchmarkParallelWrite/ac/n5/lat100us", NsPerOp: 1000000, OpsPerSec: 1000},
		{Name: "BenchmarkWritePath/voting/n5/lat100us", NsPerOp: 100, OpsPerSec: 9999},
	}
	var sb strings.Builder
	diff(&sb, loaded.Benchmarks, current)
	out := sb.String()
	if !strings.Contains(out, "15.00x") {
		t.Fatalf("voting speedup 6645/443 = 15.00x missing:\n%s", out)
	}
	if !strings.Contains(out, "0.50x") {
		t.Fatalf("ac slowdown 1000/2000 = 0.50x missing:\n%s", out)
	}
	if !strings.Contains(out, "new") {
		t.Fatalf("benchmark absent from baseline not marked new:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkGone") {
		t.Fatalf("baseline-only benchmark should not be listed:\n%s", out)
	}

	// ns/op fallback when a run lacks ops/sec.
	sb.Reset()
	diff(&sb, []result{{Name: "B/x/n1", NsPerOp: 200}}, []result{{Name: "B/x/n1", NsPerOp: 100}})
	if !strings.Contains(sb.String(), "2.00x") {
		t.Fatalf("ns/op ratio 200/100 = 2.00x missing:\n%s", sb.String())
	}

	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestAppendHistoryCreatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	run1 := []result{{Name: "BenchmarkParallelWrite/voting/n5/lat0", Benchmark: "BenchmarkParallelWrite",
		Scheme: "voting", Sites: 5, Iterations: 100, NsPerOp: 9000, OpsPerSec: 111}}
	run2 := []result{{Name: "BenchmarkParallelWrite/voting/n5/lat0", Benchmark: "BenchmarkParallelWrite",
		Scheme: "voting", Sites: 5, Iterations: 200, NsPerOp: 4500, OpsPerSec: 222}}

	t1 := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	if err := appendHistory(path, "rev1", t1, run1); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, "rev2", t1.Add(time.Hour), run2); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist []historyEntry
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("history not a JSON array of entries: %v\n%s", err, data)
	}
	if len(hist) != 2 {
		t.Fatalf("history holds %d entries, want 2 after two appends", len(hist))
	}
	if hist[0].Label != "rev1" || hist[0].At != "2026-08-09T12:00:00Z" {
		t.Fatalf("first entry = %+v", hist[0])
	}
	if hist[1].Label != "rev2" || len(hist[1].Benchmarks) != 1 || hist[1].Benchmarks[0].OpsPerSec != 222 {
		t.Fatalf("second entry = %+v", hist[1])
	}
	// The earlier run survives the second append untouched.
	if hist[0].Benchmarks[0].OpsPerSec != 111 {
		t.Fatalf("first run mutated by append: %+v", hist[0])
	}
}

func TestAppendHistoryRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := appendHistory(path, "", time.Unix(0, 0).UTC(), []result{{Name: "B/x/n1"}})
	if err == nil {
		t.Fatal("appending to a non-array file should fail, not clobber it")
	}
	// The corrupt file is left as-is for the operator to inspect.
	data, _ := os.ReadFile(path)
	if string(data) != `{"benchmarks":[]}` {
		t.Fatalf("corrupt history rewritten: %s", data)
	}
}

func TestLoadObsEmbedsSnapshot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "snap.json")
	if err := os.WriteFile(good, []byte(`{"counters":[{"name":"x","value":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := loadObs(good)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report{
		Benchmarks: []result{{Name: "BenchmarkParallelWriteMetered/voting/n5/lat0"}},
		Obs:        raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"obs":{"counters"`) {
		t.Fatalf("snapshot not embedded:\n%s", data)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadObs(bad); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
	if _, err := loadObs(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
