// Command benchjson converts the text output of the parallel data-path
// benchmarks (go test -bench=Parallel) into machine-readable JSON, so
// runs can be archived and diffed (see BENCH_parallel.json and the
// "running the parallel benchmarks" section of EXPERIMENTS.md).
//
// Usage:
//
//	go test -run='^$' -bench=Parallel . | benchjson -o BENCH_parallel.json
//	benchjson bench.txt            read from a file instead of stdin
//	benchjson -obs snap.json ...   embed a metrics snapshot from a
//	                               metered run (see BENCH_obs.json)
//	benchjson -baseline BENCH_parallel.json ...
//	                               diff against a prior report: print
//	                               per-benchmark speedup ratios
//	benchjson -history BENCH_history.json -label "$(git rev-parse --short HEAD)" ...
//	                               append this run (normalized, stamped,
//	                               labelled) to a history file, so trends
//	                               survive individual report overwrites
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	obsPath := flag.String("obs", "", "metrics snapshot JSON (from a metered bench run) to embed in the report")
	basePath := flag.String("baseline", "", "prior BENCH_*.json report to diff against: prints per-benchmark speedup ratios")
	histPath := flag.String("history", "", "history file to append this run to (created when missing)")
	label := flag.String("label", "", "run label recorded in the history entry (e.g. a git revision)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fatal(err)
	}
	rep := report{Benchmarks: results}
	if *obsPath != "" {
		rep.Obs, err = loadObs(*obsPath)
		if err != nil {
			fatal(err)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *basePath != "" {
		base, err := loadReport(*basePath)
		if err != nil {
			fatal(err)
		}
		diff(os.Stdout, base.Benchmarks, results)
	}
	if *histPath != "" {
		if err := appendHistory(*histPath, *label, time.Now().UTC(), results); err != nil {
			fatal(err)
		}
	}
}

// A historyEntry is one archived run inside a -history file, which is
// a JSON array of entries ordered by append time.
type historyEntry struct {
	At         string   `json:"at"`
	Label      string   `json:"label,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

// appendHistory loads the history file (missing means empty), appends
// one stamped entry with this run's normalized results, and writes the
// whole array back.
func appendHistory(path, label string, at time.Time, results []result) error {
	var hist []historyEntry
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("%s: not a history file: %v", path, err)
		}
	case os.IsNotExist(err):
	default:
		return err
	}
	hist = append(hist, historyEntry{
		At:         at.Format(time.RFC3339),
		Label:      label,
		Benchmarks: results,
	})
	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// loadReport reads a previously written benchjson report.
func loadReport(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// diff prints one line per current benchmark with a speedup ratio
// against the baseline run, matching entries by full name. Speedup is
// in throughput terms (>1 means the current run is faster), computed
// from ops/sec when both runs report it and from ns/op otherwise.
func diff(w io.Writer, baseline, current []result) {
	byName := make(map[string]result, len(baseline))
	for _, r := range baseline {
		byName[r.Name] = r
	}
	fmt.Fprintf(w, "%-55s %14s %14s %9s\n", "benchmark", "baseline", "current", "speedup")
	for _, cur := range current {
		base, ok := byName[cur.Name]
		if !ok {
			fmt.Fprintf(w, "%-55s %14s %14s %9s\n", cur.Name, "-", metric(cur), "new")
			continue
		}
		var ratio float64
		switch {
		case base.OpsPerSec > 0 && cur.OpsPerSec > 0:
			ratio = cur.OpsPerSec / base.OpsPerSec
		case base.NsPerOp > 0 && cur.NsPerOp > 0:
			ratio = base.NsPerOp / cur.NsPerOp
		default:
			fmt.Fprintf(w, "%-55s %14s %14s %9s\n", cur.Name, metric(base), metric(cur), "?")
			continue
		}
		fmt.Fprintf(w, "%-55s %14s %14s %8.2fx\n", cur.Name, metric(base), metric(cur), ratio)
	}
}

// metric renders a result's headline number: ops/sec when reported,
// ns/op otherwise.
func metric(r result) string {
	if r.OpsPerSec > 0 {
		return fmt.Sprintf("%.1f op/s", r.OpsPerSec)
	}
	return fmt.Sprintf("%.0f ns/op", r.NsPerOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

type report struct {
	Benchmarks []result `json:"benchmarks"`
	// Obs is the metering snapshot of a metered benchmark run (counters,
	// gauges, latency histograms), embedded verbatim via -obs.
	Obs json.RawMessage `json:"obs,omitempty"`
}

// loadObs reads a metrics snapshot file and validates it is JSON before
// embedding it untouched.
func loadObs(path string) (json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !json.Valid(data) {
		return nil, fmt.Errorf("%s: not valid JSON", path)
	}
	return json.RawMessage(data), nil
}

// result is one benchmark line, decomposed. Scheme, Sites and Latency
// are filled in when the sub-benchmark name follows the parallel
// benchmarks' <scheme>/n<sites>[/lat<...>] convention.
type result struct {
	Name       string  `json:"name"`
	Benchmark  string  `json:"benchmark"`
	Scheme     string  `json:"scheme,omitempty"`
	Sites      int     `json:"sites,omitempty"`
	Latency    string  `json:"latency,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec,omitempty"`
}

func parse(in io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return out, nil
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkParallelWrite/voting/n5/lat100us-1  100  9000 ns/op  111.7 ops/sec
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	var r result
	r.Name = trimProcs(fields[0])
	var err error
	if _, e := fmt.Sscan(fields[1], &r.Iterations); e != nil {
		return result{}, false
	}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err = fmt.Sscan(fields[i], &v); err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "ops/sec":
			r.OpsPerSec = v
		}
	}
	decomposeName(&r)
	return r, true
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends.
func trimProcs(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		c := name[i]
		if c == '-' {
			return name[:i]
		}
		if c < '0' || c > '9' {
			break
		}
	}
	return name
}

// decomposeName splits Benchmark<X>/<scheme>/n<sites>[/lat<...>].
func decomposeName(r *result) {
	parts := strings.Split(r.Name, "/")
	r.Benchmark = parts[0]
	if len(parts) < 3 {
		return
	}
	var sites int
	if _, err := fmt.Sscanf(parts[2], "n%d", &sites); err != nil {
		return
	}
	r.Scheme = parts[1]
	r.Sites = sites
	if len(parts) > 3 {
		r.Latency = parts[3]
	}
}
