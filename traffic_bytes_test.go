package relidev_test

import (
	"context"
	"testing"

	"relidev"
)

// §5: "While it is possible to instead focus on the sizes of the
// messages ... the differences are similar to the results obtained
// below, though slightly less pronounced." Verify with the real
// protocol: the voting:naive traffic ratio in bytes is smaller than in
// message counts (block payloads dominate and every scheme ships them),
// while the ordering itself is preserved.
func TestByteAccountingLessPronouncedThanMessageCounts(t *testing.T) {
	type result struct{ msgs, bytes uint64 }
	measure := func(scheme relidev.Scheme, opts ...relidev.Option) result {
		t.Helper()
		ctx := context.Background()
		opts = append(opts,
			relidev.WithGeometry(relidev.Geometry{BlockSize: 1024, NumBlocks: 32}))
		cluster, err := relidev.New(5, scheme, opts...)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := cluster.Device(0)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 1024)
		cluster.ResetTraffic()
		for i := 0; i < 100; i++ {
			payload[0] = byte(i)
			if err := dev.WriteBlock(ctx, relidev.Index(i%32), payload); err != nil {
				t.Fatal(err)
			}
		}
		st := cluster.Traffic()
		return result{msgs: st.Transmissions, bytes: st.Bytes}
	}

	// The §5 quote prices the literal Figure 4 write, so pin voting to
	// the two-round shape (the default single-round path narrows the
	// message-count gap the comparison is about).
	voting := measure(relidev.Voting, relidev.WithTwoRoundVotingWrites())
	naive := measure(relidev.NaiveAvailableCopy)
	ac := measure(relidev.AvailableCopy)

	// Ordering preserved in both metrics.
	if !(naive.msgs < ac.msgs && ac.msgs < voting.msgs) {
		t.Fatalf("message ordering broken: naive %d, ac %d, voting %d",
			naive.msgs, ac.msgs, voting.msgs)
	}
	if !(naive.bytes < ac.bytes && ac.bytes < voting.bytes) {
		t.Fatalf("byte ordering broken: naive %d, ac %d, voting %d",
			naive.bytes, ac.bytes, voting.bytes)
	}
	// ...but less pronounced in bytes: every scheme broadcasts the block
	// payload once per write on a multicast network, so the byte ratio
	// shrinks toward 1 while the message ratio stays at ~6x.
	msgRatio := float64(voting.msgs) / float64(naive.msgs)
	byteRatio := float64(voting.bytes) / float64(naive.bytes)
	if byteRatio >= msgRatio {
		t.Fatalf("byte ratio %.2f not less pronounced than message ratio %.2f", byteRatio, msgRatio)
	}
	if byteRatio < 1 {
		t.Fatalf("byte ratio %.2f lost the ordering entirely", byteRatio)
	}
}
