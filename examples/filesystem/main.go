// Filesystem example: mount an ordinary (replication-oblivious) file
// system on a reliable device and keep using it while replica sites
// crash — the architectural claim of §1-2 in action.
//
//	go run ./examples/filesystem
package main

import (
	"context"
	"fmt"
	"log"

	"relidev"
	"relidev/internal/minifs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := relidev.New(3, relidev.AvailableCopy,
		relidev.WithGeometry(relidev.Geometry{BlockSize: 512, NumBlocks: 1024}))
	if err != nil {
		return err
	}
	dev, err := cluster.Device(0)
	if err != nil {
		return err
	}

	// minifs knows nothing about replication: it is written purely
	// against the block-device interface, exactly like a kernel file
	// system above the device driver stub of Figure 1.
	fs, err := minifs.Mkfs(ctx, dev)
	if err != nil {
		return err
	}
	if err := fs.MkdirAll(ctx, "/home/user"); err != nil {
		return err
	}
	if err := fs.WriteFile(ctx, "/home/user/paper.txt",
		[]byte("A reliable device appears to the file system as an ordinary block-structured device.")); err != nil {
		return err
	}

	// Crash two of the three sites mid-flight.
	if err := cluster.Fail(1); err != nil {
		return err
	}
	if err := cluster.Fail(2); err != nil {
		return err
	}
	fmt.Println("two of three sites are down; the file system continues:")
	if err := fs.WriteFile(ctx, "/home/user/during.txt", []byte("single copy, still writable")); err != nil {
		return err
	}
	data, err := fs.ReadFile(ctx, "/home/user/paper.txt")
	if err != nil {
		return err
	}
	fmt.Printf("  read:  %q\n", data[:52])

	// Recover. The recovering sites fetch only the blocks that changed —
	// the block-level recovery granularity of §3.
	cluster.ResetTraffic()
	if err := cluster.Restart(ctx, 1); err != nil {
		return err
	}
	if err := cluster.Restart(ctx, 2); err != nil {
		return err
	}
	fmt.Printf("recovery of 2 sites cost %d high-level transmissions\n",
		cluster.Traffic().Transmissions)

	// Re-mount from a recovered site and list the tree.
	dev2, err := cluster.Device(2)
	if err != nil {
		return err
	}
	fs2, err := minifs.Mount(ctx, dev2)
	if err != nil {
		return err
	}
	ents, err := fs2.ReadDir(ctx, "/home/user")
	if err != nil {
		return err
	}
	fmt.Println("files as seen from a recovered site:")
	for _, e := range ents {
		fmt.Printf("  %-12s %5d bytes\n", e.Name, e.Size)
	}
	return nil
}
