// Witness example: run a voting reliable device in which one site is a
// *witness* (Pâris [10]) — a full quorum participant that stores only
// per-block version numbers, not data. Two data copies plus one witness
// deliver the availability of three full copies at two-thirds of the
// storage, and the witness's version numbers prevent a stale data copy
// from ever being served.
//
//	go run ./examples/witness
package main

import (
	"context"
	"fmt"
	"log"

	"relidev"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// Sites 0 and 1 hold data; site 2 is the witness.
	cluster, err := relidev.New(3, relidev.Voting, relidev.WithWitnesses(1))
	if err != nil {
		return err
	}
	dev, err := cluster.Device(0)
	if err != nil {
		return err
	}
	payload := make([]byte, cluster.Geometry().BlockSize)

	copy(payload, "version 1")
	if err := dev.WriteBlock(ctx, 0, payload); err != nil {
		return err
	}
	fmt.Println("wrote v1 with all three sites up")

	// Data site 1 fails. The remaining data site + witness form a
	// majority, so the device keeps working.
	if err := cluster.Fail(1); err != nil {
		return err
	}
	copy(payload, "version 2")
	if err := dev.WriteBlock(ctx, 0, payload); err != nil {
		return err
	}
	fmt.Println("wrote v2 with data site 0 + witness (site 1 down)")

	// Now the current data copy (site 0) fails and the stale one
	// returns: quorum = stale data + witness. The witness knows version
	// 2 exists, so the read is refused instead of serving version 1.
	if err := cluster.Fail(0); err != nil {
		return err
	}
	if err := cluster.Restart(ctx, 1); err != nil {
		return err
	}
	dev1, err := cluster.Device(1)
	if err != nil {
		return err
	}
	if _, err := dev1.ReadBlock(ctx, 0); err != nil {
		fmt.Printf("read with only the stale copy: refused (%.60s...)\n", err.Error())
	} else {
		return fmt.Errorf("stale read was served — witness guarantee broken")
	}

	// A whole-block overwrite is still safe: it needs no current copy.
	copy(payload, "version 3")
	if err := dev1.WriteBlock(ctx, 0, payload); err != nil {
		return err
	}
	got, err := dev1.ReadBlock(ctx, 0)
	if err != nil {
		return err
	}
	fmt.Printf("after overwrite, read = %q\n", got[:9])

	// The availability math (paper ref. [10]): 2 copies + 1 witness
	// equals 3 full copies.
	a3, err := relidev.Availability(relidev.Voting, 3, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("A(2 copies + 1 witness) = A_V(3) = %.6f at rho=0.05, with 2/3 of the storage\n", a3)
	return nil
}
