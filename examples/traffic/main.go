// Traffic example: measure the network cost of each consistency scheme
// with the real protocol code and compare it to the §5 analytical model
// — an empirical rendition of Figure 11 (multi-cast) and Figure 12
// (unique addressing).
//
//	go run ./examples/traffic
package main

import (
	"context"
	"fmt"
	"log"

	"relidev"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	sites  = 5
	writes = 200
	reads  = 500 // 2.5:1 read:write ratio, per the BSD trace study [9]
)

func run() error {
	for _, multicast := range []bool{true, false} {
		env := "multi-cast"
		if !multicast {
			env = "unique addressing"
		}
		fmt.Printf("=== %s network, %d sites, %d writes + %d reads ===\n", env, sites, writes, reads)
		fmt.Printf("  %-18s %12s %12s %14s\n", "scheme", "measured", "model(§5)", "per (w + 2.5r)")
		for _, scheme := range []relidev.Scheme{
			relidev.Voting, relidev.AvailableCopy, relidev.NaiveAvailableCopy,
		} {
			measured, err := measure(scheme, multicast)
			if err != nil {
				return err
			}
			costs, err := relidev.TrafficCosts(scheme, sites, 0, multicast)
			if err != nil {
				return err
			}
			model := float64(writes)*costs.Write + float64(reads)*costs.Read
			fmt.Printf("  %-18v %12d %12.0f %14.2f\n",
				scheme, measured, model, float64(measured)/float64(writes))
		}
		fmt.Println()
	}
	fmt.Println("Shape to observe (Figures 11-12): naive << available copy << voting,")
	fmt.Println("and the voting gap widens with the read share of the workload.")
	return nil
}

func measure(scheme relidev.Scheme, multicast bool) (uint64, error) {
	ctx := context.Background()
	opts := []relidev.Option{}
	if !multicast {
		opts = append(opts, relidev.WithUnicastNetwork())
	}
	cluster, err := relidev.New(sites, scheme, opts...)
	if err != nil {
		return 0, err
	}
	dev, err := cluster.Device(0)
	if err != nil {
		return 0, err
	}
	payload := make([]byte, cluster.Geometry().BlockSize)
	cluster.ResetTraffic()
	for i := 0; i < writes; i++ {
		payload[0] = byte(i)
		if err := dev.WriteBlock(ctx, relidev.Index(i%cluster.Geometry().NumBlocks), payload); err != nil {
			return 0, err
		}
	}
	for i := 0; i < reads; i++ {
		if _, err := dev.ReadBlock(ctx, relidev.Index(i%cluster.Geometry().NumBlocks)); err != nil {
			return 0, err
		}
	}
	return cluster.Traffic().Transmissions, nil
}
