// Failover example: run the same failure script under all three
// consistency schemes and watch them diverge exactly as §3-4 predict:
//
//   - voting denies service as soon as a majority is lost, but needs no
//     recovery protocol at all;
//   - available copy serves down to a single copy and, after a total
//     failure, resumes as soon as the *last site to fail* returns;
//   - naive available copy serves down to a single copy too, but after a
//     total failure must wait for *every* site.
//
// go run ./examples/failover
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"relidev"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, scheme := range []relidev.Scheme{
		relidev.Voting, relidev.AvailableCopy, relidev.NaiveAvailableCopy,
	} {
		if err := script(scheme); err != nil {
			return fmt.Errorf("%v: %w", scheme, err)
		}
		fmt.Println()
	}
	return nil
}

func script(scheme relidev.Scheme) error {
	ctx := context.Background()
	fmt.Printf("=== %v, 3 sites ===\n", scheme)
	cluster, err := relidev.New(3, scheme)
	if err != nil {
		return err
	}
	dev, err := cluster.Device(0)
	if err != nil {
		return err
	}
	payload := make([]byte, cluster.Geometry().BlockSize)

	copy(payload, "w1")
	if err := dev.WriteBlock(ctx, 0, payload); err != nil {
		return err
	}
	report("write with 3/3 sites", nil)

	// Lose one site: everyone still works (2/3 is a voting majority).
	if err := cluster.Fail(2); err != nil {
		return err
	}
	copy(payload, "w2")
	report("write with 2/3 sites", dev.WriteBlock(ctx, 0, payload))

	// Lose another: only the available copy schemes still serve.
	if err := cluster.Fail(1); err != nil {
		return err
	}
	copy(payload, "w3")
	report("write with 1/3 sites", dev.WriteBlock(ctx, 0, payload))
	_, rerr := dev.ReadBlock(ctx, 0)
	report("read  with 1/3 sites", rerr)

	// Total failure, then restart in the order 1, 2, 0 — the site that
	// failed LAST (site 0) comes back last.
	if err := cluster.Fail(0); err != nil {
		return err
	}
	for _, s := range []int{1, 2} {
		if err := cluster.Restart(ctx, s); err != nil {
			return err
		}
	}
	fmt.Printf("  after restarting sites 1 and 2: %d/3 available", cluster.AvailableSites())
	if st, _ := cluster.State(1); st == relidev.StateComatose {
		fmt.Printf(" (sites 1 and 2 are comatose, waiting)")
	}
	fmt.Println()
	if err := cluster.Restart(ctx, 0); err != nil {
		return err
	}
	fmt.Printf("  after restarting site 0 (last to fail): %d/3 available\n", cluster.AvailableSites())

	// Whoever is available must serve the most recent successful write.
	data, err := dev.ReadBlock(ctx, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  final read: %q (most recent successful write)\n", data[:2])
	return nil
}

func report(what string, err error) {
	switch {
	case err == nil:
		fmt.Printf("  %s: ok\n", what)
	case errors.Is(err, context.Canceled):
		fmt.Printf("  %s: cancelled\n", what)
	default:
		fmt.Printf("  %s: DENIED (%v)\n", what, short(err))
	}
}

func short(err error) string {
	s := err.Error()
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}
