// Quickstart: create a 3-site reliable device, write a block, crash a
// site, keep reading, recover.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"relidev"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A reliable device with three copies under the paper's recommended
	// scheme, naive available copy.
	cluster, err := relidev.New(3, relidev.NaiveAvailableCopy)
	if err != nil {
		return err
	}
	dev, err := cluster.Device(0)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	fmt.Printf("reliable device: %d blocks of %d bytes, 3 copies\n",
		geom.NumBlocks, geom.BlockSize)

	// Write through the ordinary block-device interface.
	payload := make([]byte, geom.BlockSize)
	copy(payload, "hello, replicated block")
	if err := dev.WriteBlock(ctx, 7, payload); err != nil {
		return err
	}
	fmt.Printf("wrote block 7; traffic so far: %d transmissions\n",
		cluster.Traffic().Transmissions)

	// Crash a site. The device does not care.
	if err := cluster.Fail(1); err != nil {
		return err
	}
	data, err := dev.ReadBlock(ctx, 7)
	if err != nil {
		return err
	}
	fmt.Printf("read with a site down: %q\n", data[:23])

	// And another one: a single surviving copy still serves everything —
	// that is the availability argument of §3.2.
	if err := cluster.Fail(2); err != nil {
		return err
	}
	copy(payload, "written on the last copy")
	if err := dev.WriteBlock(ctx, 7, payload); err != nil {
		return err
	}
	fmt.Println("write succeeded with one copy left")

	// Recover both. Restart drives the scheme's recovery procedure; the
	// recovered sites copy only the blocks they missed.
	if err := cluster.Restart(ctx, 1); err != nil {
		return err
	}
	if err := cluster.Restart(ctx, 2); err != nil {
		return err
	}
	fmt.Printf("available sites after recovery: %d/3\n", cluster.AvailableSites())

	// Read from a recovered site's device: same contents.
	dev2, err := cluster.Device(2)
	if err != nil {
		return err
	}
	data, err = dev2.ReadBlock(ctx, 7)
	if err != nil {
		return err
	}
	fmt.Printf("read at recovered site: %q\n", data[:24])
	return nil
}
