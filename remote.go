package relidev

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sort"
	"time"

	"relidev/internal/availcopy"
	"relidev/internal/block"
	"relidev/internal/core"
	"relidev/internal/naiveac"
	"relidev/internal/obs"
	"relidev/internal/obs/flight"
	"relidev/internal/obs/health"
	"relidev/internal/obs/slo"
	"relidev/internal/obs/tsdb"
	"relidev/internal/protocol"
	"relidev/internal/rpcnet"
	"relidev/internal/scheme"
	"relidev/internal/site"
	"relidev/internal/store"
	"relidev/internal/voting"
)

// RemoteConfig describes one site of a reliable device deployed as real
// OS processes over TCP (the deployment of §1: "a set of server
// processes on several sites").
type RemoteConfig struct {
	// Self is this process's site id (0..n-1).
	Self int
	// Peers maps every site id — including Self — to its TCP address.
	// Self's entry is the address this process listens on.
	Peers map[int]string
	// Scheme selects the consistency algorithm; it must match across all
	// sites.
	Scheme Scheme
	// Geometry is the device shape; the zero value defaults to 512x128.
	// It must match across all sites.
	Geometry Geometry
	// StorePath optionally persists this site's blocks in a file; empty
	// keeps them in memory. An existing image is reopened, which is how
	// a restarted server process recovers its pre-crash state.
	StorePath string
	// StoreDir optionally persists this site's blocks in an append-only
	// checksummed segment store under the directory (DESIGN.md §12) —
	// the fast write path. Takes precedence over StorePath. An existing
	// store is replayed on open, truncating any tail torn by a crash.
	StoreDir string
	// GroupCommitBatch, when positive, layers group commit over the
	// store: concurrent writes coalesce into batches of up to this many
	// records sharing one fsync.
	GroupCommitBatch int
	// GroupCommitDelay bounds how long a group-commit flush waits for
	// more writers to join its batch. Zero batches opportunistically,
	// adding no latency.
	GroupCommitDelay time.Duration
	// Timeout bounds each remote call; zero means 5 seconds.
	Timeout time.Duration
	// Comatose starts the site in the comatose state, forcing it through
	// the scheme's recovery procedure before it serves data. Use it when
	// restarting after a crash.
	Comatose bool
	// Metered attaches the observability layer to this site: op counters,
	// latency histograms, metering of every peer RPC, and a trace ring.
	// Read the result through DebugHandler (the blockserver binds it on
	// -debug-addr).
	Metered bool
	// HealthRules attaches the rule-driven health engine (requires
	// Metered): DebugHandler then serves /healthz, answering 503 once a
	// critical alert is active. Nil leaves the endpoint off; start from
	// DefaultHealthRules for the standard set.
	HealthRules []HealthRule
	// TelemetryStep, when positive, attaches the telemetry plane
	// (requires Metered): a wall-clock poller samples the registry into
	// the tsdb ring every step, DebugHandler serves /timeseries and
	// /cluster/metrics, and the site answers peers' TelemetryPull
	// scrapes with its full registry snapshot.
	TelemetryStep time.Duration
	// TelemetryRetain is the number of tsdb frames kept; zero keeps 600
	// (ten minutes at a 1s step).
	TelemetryRetain int
	// SLOs attaches the burn-rate engine over the telemetry ring
	// (requires TelemetryStep): the poller evaluates every objective
	// each step — so budget exhaustion seals the flight recorder even
	// with nobody watching — and DebugHandler serves /slo, answering 503
	// once any error budget is exhausted. Start from DefaultSLOs.
	SLOs []SLO
}

// RemoteSite is one running site of a TCP-deployed reliable device: a
// replica server plus the local consistency controller and the device
// interface it serves.
type RemoteSite struct {
	cfg       RemoteConfig
	replica   *site.Replica
	server    *rpcnet.Server
	client    *rpcnet.Client
	transport protocol.Transport
	ctrl      scheme.Controller
	device    *core.ReliableDevice
	obs       *obs.Observer
	health    *health.Engine
	flight    *flight.Recorder
	tsdb      *tsdb.DB
	slo       *slo.Engine
	stopPoll  chan struct{}
}

// OpenRemote starts a site: it opens (or creates) the local store,
// listens on the configured address, and connects the consistency
// controller to its peers. Call Recover before serving if the site
// starts comatose.
func OpenRemote(cfg RemoteConfig) (*RemoteSite, error) {
	if cfg.Geometry == (Geometry{}) {
		cfg.Geometry = Geometry{BlockSize: 512, NumBlocks: 128}
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("relidev: remote config needs peer addresses")
	}
	if cfg.TelemetryStep < 0 {
		return nil, fmt.Errorf("relidev: negative telemetry step %v", cfg.TelemetryStep)
	}
	if cfg.TelemetryStep > 0 && !cfg.Metered {
		return nil, errors.New("relidev: telemetry requires Metered")
	}
	if len(cfg.SLOs) > 0 && cfg.TelemetryStep == 0 {
		return nil, errors.New("relidev: SLOs require TelemetryStep")
	}
	selfAddr, ok := cfg.Peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("relidev: peers map has no entry for self (%d)", cfg.Self)
	}

	var observer *obs.Observer
	if cfg.Metered {
		observer = obs.New(obs.WithTracing(4096))
	}

	var st store.Store
	var err error
	switch {
	case cfg.StoreDir != "":
		st, err = store.OpenSeg(cfg.StoreDir)
		if isNotExist(err) || errors.Is(err, store.ErrNoSegments) {
			st, err = store.CreateSeg(cfg.StoreDir, cfg.Geometry)
		}
	case cfg.StorePath != "":
		st, err = store.OpenFile(cfg.StorePath)
		if errors.Is(err, store.ErrBadImage) || isNotExist(err) {
			st, err = store.CreateFile(cfg.StorePath, cfg.Geometry)
		}
	default:
		st, err = store.NewMem(cfg.Geometry)
	}
	if err != nil {
		return nil, fmt.Errorf("relidev: open store: %w", err)
	}
	if cfg.GroupCommitBatch > 0 {
		st = store.NewBatcher(st, store.BatchPolicy{
			MaxDelay: cfg.GroupCommitDelay,
			MaxBatch: cfg.GroupCommitBatch,
		}, storeObsOpts(observer, protocol.SiteID(cfg.Self))...)
	}

	initial := protocol.StateAvailable
	if cfg.Comatose {
		initial = protocol.StateComatose
	}
	replica, err := site.New(site.Config{
		ID:           protocol.SiteID(cfg.Self),
		Store:        st,
		InitialState: initial,
	})
	if err != nil {
		st.Close()
		return nil, err
	}

	addrs := make(map[protocol.SiteID]string, len(cfg.Peers))
	ids := make([]protocol.SiteID, 0, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		addrs[protocol.SiteID(id)] = addr
		ids = append(ids, protocol.SiteID(id))
	}
	sortSiteIDs(ids)
	client, err := rpcnet.NewClient(protocol.SiteID(cfg.Self), addrs, cfg.Timeout)
	if err != nil {
		st.Close()
		return nil, err
	}

	weights := make([]int64, len(ids))
	for i := range weights {
		weights[i] = 1000
	}
	if len(ids)%2 == 0 {
		weights[0]++
	}
	var transport protocol.Transport = client
	if observer != nil {
		transport = obs.WrapTransport(observer, "rpc", transport, ids)
	}
	env := scheme.Env{Self: replica, Transport: transport, Sites: ids, Weights: weights}
	if observer != nil {
		env.Obs = observer.SchemeSite(cfg.Scheme.String(), protocol.SiteID(cfg.Self))
		replica.SetWTransitionHook(env.Obs.WTransition)
		if hook := observer.HandleHook(cfg.Scheme.String(), protocol.SiteID(cfg.Self)); hook != nil {
			replica.SetHandleHook(hook)
		}
	}
	var ctrl scheme.Controller
	switch cfg.Scheme {
	case Voting:
		ctrl, err = voting.New(env)
	case AvailableCopy:
		ctrl, err = availcopy.New(env)
	case NaiveAvailableCopy:
		ctrl, err = naiveac.New(env)
	default:
		err = fmt.Errorf("relidev: unknown scheme %v", cfg.Scheme)
	}
	if err != nil {
		client.Close()
		st.Close()
		return nil, err
	}

	server, err := rpcnet.Serve(selfAddr, replica)
	if err != nil {
		client.Close()
		st.Close()
		return nil, err
	}
	dev, err := core.NewReliableDevice(cfg.Geometry, ctrl)
	if err != nil {
		server.Close()
		client.Close()
		st.Close()
		return nil, err
	}
	rs := &RemoteSite{
		cfg:       cfg,
		replica:   replica,
		server:    server,
		client:    client,
		transport: transport,
		ctrl:      ctrl,
		device:    dev,
		obs:       observer,
	}
	if observer != nil {
		// The black-box recorder rides the debug surface: each
		// /debug/flight request snapshots the live signals — metrics
		// deltas, the trace tail, the failure detector's suspect set,
		// repair lag, batcher occupancy — and seals the ring into a dump.
		rs.flight = flight.New(obs.WallClock, 64,
			flight.MetricsDelta(observer),
			flight.TraceTail(observer, 64),
			flight.Suspects(client.SuspectSet),
			flight.RepairLag(observer),
			flight.Occupancy(observer),
		)
		if len(cfg.HealthRules) > 0 {
			rs.health = health.NewEngine(observer.Snapshot, nil, cfg.HealthRules...)
		}
		// Answer peers' TelemetryPull scrapes with the full local
		// registry: separate processes hold genuinely separate
		// registries, so unlike the in-process cluster there is no
		// site-label slicing to do — the whole snapshot is this site's
		// contribution.
		replica.SetTelemetryHook(func() []byte {
			return obs.EncodeSnapshot(observer.Snapshot())
		})
	}
	if cfg.TelemetryStep > 0 {
		retain := cfg.TelemetryRetain
		if retain <= 0 {
			retain = 600
		}
		rs.tsdb = tsdb.New(tsdb.Config{
			Clock:  observer.Now,
			Source: observer.Snapshot,
			StepNs: cfg.TelemetryStep.Nanoseconds(),
			Retain: retain,
		})
		if len(cfg.SLOs) > 0 {
			rs.slo = slo.NewEngine(rs.tsdb, observer.Now, rs.sealOnExhaustion, cfg.SLOs...)
		}
		rs.stopPoll = make(chan struct{})
		go rs.poll(cfg.TelemetryStep)
	}
	return rs, nil
}

// poll drives the telemetry plane on the deployment cadence: sample the
// registry into the ring, then re-evaluate the burn rates so budget
// exhaustion seals the flight recorder even with nobody polling /slo.
func (r *RemoteSite) poll(step time.Duration) {
	t := time.NewTicker(step)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.tsdb.Sample()
			if r.slo != nil {
				r.slo.Evaluate()
			}
		case <-r.stopPoll:
			return
		}
	}
}

// sealOnExhaustion is the SLO engine's seal hook: the forensic ring is
// frozen at the moment an error budget runs out, retrievable later via
// /debug/flight (flight.Recorder.LastDump).
func (r *RemoteSite) sealOnExhaustion(trigger string) {
	if r.flight != nil {
		r.flight.Seal(trigger)
	}
}

// DebugHandler returns this site's observability HTTP surface
// (/metrics, /metrics.prom, /trace, /trace/tree, /profile,
// /debug/flight, /debug/pprof/, /cluster/metrics, and — with the
// matching RemoteConfig options — /healthz, /timeseries, /slo), or
// ErrNotMetered when the site was opened without RemoteConfig.Metered.
func (r *RemoteSite) DebugHandler() (http.Handler, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	mux := obs.NewDebugMux(r.obs)
	mux.HandleFunc("/debug/flight", flight.Handler(r.flight))
	if r.health != nil {
		mux.HandleFunc("/healthz", health.Handler(r.health))
	}
	mux.HandleFunc("/cluster/metrics", obs.ClusterMetricsHandler(r.clusterPull))
	if r.tsdb != nil {
		mux.HandleFunc("/timeseries", tsdb.Handler(r.tsdb))
	}
	if r.slo != nil {
		mux.HandleFunc("/slo", slo.Handler(r.slo))
	}
	return mux, nil
}

// clusterPull assembles the cluster metrics view from this site's
// vantage: a TelemetryPull broadcast to every peer over the real RPC
// transport (priced and metered like any other protocol message),
// merged with the full local registry — separate processes hold
// separate registries, so the local snapshot is exactly this site's
// contribution. Unreachable peers degrade to per-site errors, never an
// error for the whole view.
func (r *RemoteSite) clusterPull(ctx context.Context) (obs.Snapshot, map[protocol.SiteID]error) {
	peers := make([]protocol.SiteID, 0, len(r.cfg.Peers))
	for id := range r.cfg.Peers {
		if id != r.cfg.Self {
			peers = append(peers, protocol.SiteID(id))
		}
	}
	sortSiteIDs(peers)
	return obs.ClusterPull(ctx, r.transport, protocol.SiteID(r.cfg.Self), peers, r.obs.Snapshot)
}

// ClusterMetricsJSON returns the cross-site aggregated metrics view —
// every peer's registry scraped over the RPC transport and merged with
// this site's own — plus any per-site scrape errors, encoded as the
// same JSON shape /cluster/metrics serves. Requires
// RemoteConfig.Metered.
func (r *RemoteSite) ClusterMetricsJSON(ctx context.Context) ([]byte, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	snap, errs := r.clusterPull(ctx)
	errMsgs := make(map[string]string, len(errs))
	for id, err := range errs {
		errMsgs[id.String()] = err.Error()
	}
	return json.Marshal(obs.ClusterMetrics{Metrics: snap, Errors: errMsgs})
}

// SLOs re-evaluates every configured objective against the telemetry
// ring and returns the report — the same evaluation /slo serves.
// Requires RemoteConfig.SLOs.
func (r *RemoteSite) SLOs() (SLOReport, error) {
	if r.tsdb == nil {
		return SLOReport{}, ErrNoTelemetry
	}
	if r.slo == nil {
		return SLOReport{}, ErrNoSLOs
	}
	return r.slo.Evaluate(), nil
}

// Health evaluates the site's health rule set against its current
// metrics. Requires RemoteConfig.Metered and HealthRules.
func (r *RemoteSite) Health() (HealthVerdict, error) {
	if r.obs == nil {
		return HealthVerdict{}, ErrNotMetered
	}
	if r.health == nil {
		return HealthVerdict{}, ErrNoHealthRules
	}
	return r.health.Evaluate(), nil
}

// CriticalPath computes this site's critical-path profile from its
// current metrics. Requires RemoteConfig.Metered.
func (r *RemoteSite) CriticalPath() (*CriticalPathProfile, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	return r.obs.CriticalPath(), nil
}

// ClusterTraceHandler returns an HTTP handler serving cluster-wide
// stitched trace trees: on each request it merges this site's trace
// ring with every peer /trace endpoint in peerTraceURLs (e.g.
// "http://host:debugport/trace") and stitches one span tree per traced
// operation. Unreachable peers degrade to partial trees and are listed
// in the response's "errors" field. Requires RemoteConfig.Metered.
func (r *RemoteSite) ClusterTraceHandler(peerTraceURLs []string) (http.Handler, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	return obs.ClusterTraceHandler(r.obs, nil, peerTraceURLs), nil
}

func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

func sortSiteIDs(ids []protocol.SiteID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Addr returns the address this site's server is listening on.
func (r *RemoteSite) Addr() string { return r.server.Addr() }

// Device returns this site's view of the reliable device.
func (r *RemoteSite) Device() Device { return r.device }

// State returns this site's current state.
func (r *RemoteSite) State() SiteState { return r.replica.State() }

// Recover runs the consistency scheme's recovery procedure. It returns
// ErrMustWait when recovery cannot complete yet (the site stays comatose
// and the caller should retry after other sites come back).
func (r *RemoteSite) Recover(ctx context.Context) error {
	err := r.ctrl.Recover(ctx)
	if errors.Is(err, scheme.ErrAwaitingSites) {
		return fmt.Errorf("%v: %w", err, ErrMustWait)
	}
	return err
}

// FetchFrom reads one block directly from a specific peer site,
// bypassing the consistency scheme. Diagnostics and tests only: it shows
// what a single replica currently holds, stale or not.
func (r *RemoteSite) FetchFrom(ctx context.Context, siteID int, idx int) ([]byte, uint64, error) {
	resp, err := r.client.Fetch(ctx, protocol.SiteID(r.cfg.Self), protocol.SiteID(siteID),
		protocol.FetchRequest{Block: block.Index(idx)})
	if err != nil {
		return nil, 0, err
	}
	f, ok := resp.(protocol.FetchReply)
	if !ok {
		return nil, 0, fmt.Errorf("relidev: unexpected fetch reply %T", resp)
	}
	return f.Data, uint64(f.Version), nil
}

// Close shuts the site down: telemetry poller, server, peer
// connections, store.
func (r *RemoteSite) Close() error {
	if r.stopPoll != nil {
		close(r.stopPoll)
		r.stopPoll = nil
	}
	errServer := r.server.Close()
	errClient := r.client.Close()
	errStore := r.replica.Store().Close()
	if errServer != nil {
		return errServer
	}
	if errClient != nil {
		return errClient
	}
	return errStore
}

// ErrMustWait is returned by RemoteSite.Recover while the recovery
// protocol has to wait for more sites to come back (§3.2-3.3).
var ErrMustWait = errors.New("relidev: recovery must wait for more sites")
