package relidev

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sort"
	"time"

	"relidev/internal/availcopy"
	"relidev/internal/block"
	"relidev/internal/core"
	"relidev/internal/naiveac"
	"relidev/internal/obs"
	"relidev/internal/obs/flight"
	"relidev/internal/obs/health"
	"relidev/internal/protocol"
	"relidev/internal/rpcnet"
	"relidev/internal/scheme"
	"relidev/internal/site"
	"relidev/internal/store"
	"relidev/internal/voting"
)

// RemoteConfig describes one site of a reliable device deployed as real
// OS processes over TCP (the deployment of §1: "a set of server
// processes on several sites").
type RemoteConfig struct {
	// Self is this process's site id (0..n-1).
	Self int
	// Peers maps every site id — including Self — to its TCP address.
	// Self's entry is the address this process listens on.
	Peers map[int]string
	// Scheme selects the consistency algorithm; it must match across all
	// sites.
	Scheme Scheme
	// Geometry is the device shape; the zero value defaults to 512x128.
	// It must match across all sites.
	Geometry Geometry
	// StorePath optionally persists this site's blocks in a file; empty
	// keeps them in memory. An existing image is reopened, which is how
	// a restarted server process recovers its pre-crash state.
	StorePath string
	// StoreDir optionally persists this site's blocks in an append-only
	// checksummed segment store under the directory (DESIGN.md §12) —
	// the fast write path. Takes precedence over StorePath. An existing
	// store is replayed on open, truncating any tail torn by a crash.
	StoreDir string
	// GroupCommitBatch, when positive, layers group commit over the
	// store: concurrent writes coalesce into batches of up to this many
	// records sharing one fsync.
	GroupCommitBatch int
	// GroupCommitDelay bounds how long a group-commit flush waits for
	// more writers to join its batch. Zero batches opportunistically,
	// adding no latency.
	GroupCommitDelay time.Duration
	// Timeout bounds each remote call; zero means 5 seconds.
	Timeout time.Duration
	// Comatose starts the site in the comatose state, forcing it through
	// the scheme's recovery procedure before it serves data. Use it when
	// restarting after a crash.
	Comatose bool
	// Metered attaches the observability layer to this site: op counters,
	// latency histograms, metering of every peer RPC, and a trace ring.
	// Read the result through DebugHandler (the blockserver binds it on
	// -debug-addr).
	Metered bool
	// HealthRules attaches the rule-driven health engine (requires
	// Metered): DebugHandler then serves /healthz, answering 503 once a
	// critical alert is active. Nil leaves the endpoint off; start from
	// DefaultHealthRules for the standard set.
	HealthRules []HealthRule
}

// RemoteSite is one running site of a TCP-deployed reliable device: a
// replica server plus the local consistency controller and the device
// interface it serves.
type RemoteSite struct {
	cfg     RemoteConfig
	replica *site.Replica
	server  *rpcnet.Server
	client  *rpcnet.Client
	ctrl    scheme.Controller
	device  *core.ReliableDevice
	obs     *obs.Observer
	health  *health.Engine
	flight  *flight.Recorder
}

// OpenRemote starts a site: it opens (or creates) the local store,
// listens on the configured address, and connects the consistency
// controller to its peers. Call Recover before serving if the site
// starts comatose.
func OpenRemote(cfg RemoteConfig) (*RemoteSite, error) {
	if cfg.Geometry == (Geometry{}) {
		cfg.Geometry = Geometry{BlockSize: 512, NumBlocks: 128}
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("relidev: remote config needs peer addresses")
	}
	selfAddr, ok := cfg.Peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("relidev: peers map has no entry for self (%d)", cfg.Self)
	}

	var observer *obs.Observer
	if cfg.Metered {
		observer = obs.New(obs.WithTracing(4096))
	}

	var st store.Store
	var err error
	switch {
	case cfg.StoreDir != "":
		st, err = store.OpenSeg(cfg.StoreDir)
		if isNotExist(err) || errors.Is(err, store.ErrNoSegments) {
			st, err = store.CreateSeg(cfg.StoreDir, cfg.Geometry)
		}
	case cfg.StorePath != "":
		st, err = store.OpenFile(cfg.StorePath)
		if errors.Is(err, store.ErrBadImage) || isNotExist(err) {
			st, err = store.CreateFile(cfg.StorePath, cfg.Geometry)
		}
	default:
		st, err = store.NewMem(cfg.Geometry)
	}
	if err != nil {
		return nil, fmt.Errorf("relidev: open store: %w", err)
	}
	if cfg.GroupCommitBatch > 0 {
		st = store.NewBatcher(st, store.BatchPolicy{
			MaxDelay: cfg.GroupCommitDelay,
			MaxBatch: cfg.GroupCommitBatch,
		}, storeObsOpts(observer, protocol.SiteID(cfg.Self))...)
	}

	initial := protocol.StateAvailable
	if cfg.Comatose {
		initial = protocol.StateComatose
	}
	replica, err := site.New(site.Config{
		ID:           protocol.SiteID(cfg.Self),
		Store:        st,
		InitialState: initial,
	})
	if err != nil {
		st.Close()
		return nil, err
	}

	addrs := make(map[protocol.SiteID]string, len(cfg.Peers))
	ids := make([]protocol.SiteID, 0, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		addrs[protocol.SiteID(id)] = addr
		ids = append(ids, protocol.SiteID(id))
	}
	sortSiteIDs(ids)
	client, err := rpcnet.NewClient(protocol.SiteID(cfg.Self), addrs, cfg.Timeout)
	if err != nil {
		st.Close()
		return nil, err
	}

	weights := make([]int64, len(ids))
	for i := range weights {
		weights[i] = 1000
	}
	if len(ids)%2 == 0 {
		weights[0]++
	}
	var transport protocol.Transport = client
	if observer != nil {
		transport = obs.WrapTransport(observer, "rpc", transport, ids)
	}
	env := scheme.Env{Self: replica, Transport: transport, Sites: ids, Weights: weights}
	if observer != nil {
		env.Obs = observer.SchemeSite(cfg.Scheme.String(), protocol.SiteID(cfg.Self))
		replica.SetWTransitionHook(env.Obs.WTransition)
		if hook := observer.HandleHook(cfg.Scheme.String(), protocol.SiteID(cfg.Self)); hook != nil {
			replica.SetHandleHook(hook)
		}
	}
	var ctrl scheme.Controller
	switch cfg.Scheme {
	case Voting:
		ctrl, err = voting.New(env)
	case AvailableCopy:
		ctrl, err = availcopy.New(env)
	case NaiveAvailableCopy:
		ctrl, err = naiveac.New(env)
	default:
		err = fmt.Errorf("relidev: unknown scheme %v", cfg.Scheme)
	}
	if err != nil {
		client.Close()
		st.Close()
		return nil, err
	}

	server, err := rpcnet.Serve(selfAddr, replica)
	if err != nil {
		client.Close()
		st.Close()
		return nil, err
	}
	dev, err := core.NewReliableDevice(cfg.Geometry, ctrl)
	if err != nil {
		server.Close()
		client.Close()
		st.Close()
		return nil, err
	}
	rs := &RemoteSite{
		cfg:     cfg,
		replica: replica,
		server:  server,
		client:  client,
		ctrl:    ctrl,
		device:  dev,
		obs:     observer,
	}
	if observer != nil {
		// The black-box recorder rides the debug surface: each
		// /debug/flight request snapshots the live signals — metrics
		// deltas, the trace tail, the failure detector's suspect set,
		// repair lag, batcher occupancy — and seals the ring into a dump.
		rs.flight = flight.New(obs.WallClock, 64,
			flight.MetricsDelta(observer),
			flight.TraceTail(observer, 64),
			flight.Suspects(client.SuspectSet),
			flight.RepairLag(observer),
			flight.Occupancy(observer),
		)
		if len(cfg.HealthRules) > 0 {
			rs.health = health.NewEngine(observer.Snapshot, nil, cfg.HealthRules...)
		}
	}
	return rs, nil
}

// DebugHandler returns this site's observability HTTP surface
// (/metrics, /metrics.prom, /trace, /trace/tree, /profile,
// /debug/flight, /debug/pprof/, and — with RemoteConfig.HealthRules —
// /healthz), or ErrNotMetered when the site was opened without
// RemoteConfig.Metered.
func (r *RemoteSite) DebugHandler() (http.Handler, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	mux := obs.NewDebugMux(r.obs)
	mux.HandleFunc("/debug/flight", flight.Handler(r.flight))
	if r.health != nil {
		mux.HandleFunc("/healthz", health.Handler(r.health))
	}
	return mux, nil
}

// Health evaluates the site's health rule set against its current
// metrics. Requires RemoteConfig.Metered and HealthRules.
func (r *RemoteSite) Health() (HealthVerdict, error) {
	if r.obs == nil {
		return HealthVerdict{}, ErrNotMetered
	}
	if r.health == nil {
		return HealthVerdict{}, ErrNoHealthRules
	}
	return r.health.Evaluate(), nil
}

// CriticalPath computes this site's critical-path profile from its
// current metrics. Requires RemoteConfig.Metered.
func (r *RemoteSite) CriticalPath() (*CriticalPathProfile, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	return r.obs.CriticalPath(), nil
}

// ClusterTraceHandler returns an HTTP handler serving cluster-wide
// stitched trace trees: on each request it merges this site's trace
// ring with every peer /trace endpoint in peerTraceURLs (e.g.
// "http://host:debugport/trace") and stitches one span tree per traced
// operation. Unreachable peers degrade to partial trees and are listed
// in the response's "errors" field. Requires RemoteConfig.Metered.
func (r *RemoteSite) ClusterTraceHandler(peerTraceURLs []string) (http.Handler, error) {
	if r.obs == nil {
		return nil, ErrNotMetered
	}
	return obs.ClusterTraceHandler(r.obs, nil, peerTraceURLs), nil
}

func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

func sortSiteIDs(ids []protocol.SiteID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Addr returns the address this site's server is listening on.
func (r *RemoteSite) Addr() string { return r.server.Addr() }

// Device returns this site's view of the reliable device.
func (r *RemoteSite) Device() Device { return r.device }

// State returns this site's current state.
func (r *RemoteSite) State() SiteState { return r.replica.State() }

// Recover runs the consistency scheme's recovery procedure. It returns
// ErrMustWait when recovery cannot complete yet (the site stays comatose
// and the caller should retry after other sites come back).
func (r *RemoteSite) Recover(ctx context.Context) error {
	err := r.ctrl.Recover(ctx)
	if errors.Is(err, scheme.ErrAwaitingSites) {
		return fmt.Errorf("%v: %w", err, ErrMustWait)
	}
	return err
}

// FetchFrom reads one block directly from a specific peer site,
// bypassing the consistency scheme. Diagnostics and tests only: it shows
// what a single replica currently holds, stale or not.
func (r *RemoteSite) FetchFrom(ctx context.Context, siteID int, idx int) ([]byte, uint64, error) {
	resp, err := r.client.Fetch(ctx, protocol.SiteID(r.cfg.Self), protocol.SiteID(siteID),
		protocol.FetchRequest{Block: block.Index(idx)})
	if err != nil {
		return nil, 0, err
	}
	f, ok := resp.(protocol.FetchReply)
	if !ok {
		return nil, 0, fmt.Errorf("relidev: unexpected fetch reply %T", resp)
	}
	return f.Data, uint64(f.Version), nil
}

// Close shuts the site down: server, peer connections, store.
func (r *RemoteSite) Close() error {
	errServer := r.server.Close()
	errClient := r.client.Close()
	errStore := r.replica.Store().Close()
	if errServer != nil {
		return errServer
	}
	if errClient != nil {
		return errClient
	}
	return errStore
}

// ErrMustWait is returned by RemoteSite.Recover while the recovery
// protocol has to wait for more sites to come back (§3.2-3.3).
var ErrMustWait = errors.New("relidev: recovery must wait for more sites")
