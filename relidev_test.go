package relidev_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"relidev"
)

func allSchemes() []relidev.Scheme {
	return []relidev.Scheme{relidev.Voting, relidev.AvailableCopy, relidev.NaiveAvailableCopy}
}

func TestNewValidation(t *testing.T) {
	if _, err := relidev.New(0, relidev.Voting); err == nil {
		t.Fatal("accepted zero sites")
	}
	if _, err := relidev.New(3, relidev.Scheme(42)); err == nil {
		t.Fatal("accepted unknown scheme")
	}
	if _, err := relidev.New(3, relidev.Voting,
		relidev.WithGeometry(relidev.Geometry{BlockSize: -1, NumBlocks: 2})); err == nil {
		t.Fatal("accepted invalid geometry")
	}
	if _, err := relidev.New(3, relidev.Voting, relidev.WithWeights([]int64{1})); err == nil {
		t.Fatal("accepted mismatched weights")
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[relidev.Scheme]string{
		relidev.Voting:             "voting",
		relidev.AvailableCopy:      "available-copy",
		relidev.NaiveAvailableCopy: "naive",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestPublicDeviceLifecycle(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			ctx := context.Background()
			cluster, err := relidev.New(3, scheme,
				relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 8}))
			if err != nil {
				t.Fatal(err)
			}
			dev, err := cluster.Device(1)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 64)
			copy(payload, "public api")
			if err := dev.WriteBlock(ctx, 3, payload); err != nil {
				t.Fatal(err)
			}
			if err := cluster.Fail(0); err != nil {
				t.Fatal(err)
			}
			if st, _ := cluster.State(0); st != relidev.StateFailed {
				t.Fatalf("state = %v", st)
			}
			got, err := dev.ReadBlock(ctx, 3)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[:10]) != "public api" {
				t.Fatalf("read = %q", got[:10])
			}
			if err := cluster.Restart(ctx, 0); err != nil {
				t.Fatal(err)
			}
			if cluster.AvailableSites() != 3 {
				t.Fatalf("available = %d", cluster.AvailableSites())
			}
			if cluster.Sites() != 3 {
				t.Fatalf("sites = %d", cluster.Sites())
			}
		})
	}
}

func TestTrafficCountersViaPublicAPI(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(4, relidev.NaiveAvailableCopy)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cluster.Device(0)
	payload := make([]byte, cluster.Geometry().BlockSize)
	cluster.ResetTraffic()
	for i := 0; i < 10; i++ {
		if err := dev.WriteBlock(ctx, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := cluster.Traffic(); st.Transmissions != 10 {
		t.Fatalf("10 naive writes cost %d transmissions, want 10", st.Transmissions)
	}
}

func TestUnicastOption(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(4, relidev.NaiveAvailableCopy, relidev.WithUnicastNetwork())
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cluster.Device(0)
	payload := make([]byte, cluster.Geometry().BlockSize)
	cluster.ResetTraffic()
	if err := dev.WriteBlock(ctx, 0, payload); err != nil {
		t.Fatal(err)
	}
	if st := cluster.Traffic(); st.Transmissions != 3 {
		t.Fatalf("unicast naive write cost %d, want n-1 = 3", st.Transmissions)
	}
}

func TestFileStoresOption(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cluster, err := relidev.New(2, relidev.AvailableCopy,
		relidev.WithFileStores(dir),
		relidev.WithGeometry(relidev.Geometry{BlockSize: 128, NumBlocks: 8}))
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cluster.Device(0)
	payload := make([]byte, 128)
	copy(payload, "on disk")
	if err := dev.WriteBlock(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := filepath.Glob(filepath.Join(dir, "site*.img")); err != nil {
			t.Fatal(err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "site*.img"))
	if len(matches) != 2 {
		t.Fatalf("store files = %v, want 2", matches)
	}
}

func TestSegmentStoresAndGroupCommitOptions(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cluster, err := relidev.New(3, relidev.Voting,
		relidev.WithSegmentStores(dir),
		relidev.WithGroupCommit(0, 32),
		relidev.WithMetering(),
		relidev.WithGeometry(relidev.Geometry{BlockSize: 128, NumBlocks: 8}))
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cluster.Device(0)
	payload := make([]byte, 128)
	copy(payload, "segmented")
	if err := dev.WriteBlock(ctx, 2, payload); err != nil {
		t.Fatal(err)
	}
	got, err := dev.ReadBlock(ctx, 2)
	if err != nil || string(got[:9]) != "segmented" {
		t.Fatalf("read back = %q, %v", got[:9], err)
	}
	// One segment directory per site, each holding at least one segment.
	for i := 0; i < 3; i++ {
		segs, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("site%d", i), "seg-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("site %d segment files = %v, %v", i, segs, err)
		}
	}
	// The group-commit occupancy gauge is exposed once a flush ran.
	raw, err := cluster.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "relidev_group_commit_batch_occupancy") {
		t.Fatal("metrics missing the group-commit occupancy gauge")
	}
}

func TestReconfigurationViaPublicAPI(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(2, relidev.NaiveAvailableCopy,
		relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 8}))
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cluster.Device(0)
	payload := make([]byte, 64)
	copy(payload, "grown")
	if err := dev.WriteBlock(ctx, 0, payload); err != nil {
		t.Fatal(err)
	}
	id, err := cluster.Grow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || cluster.Sites() != 3 {
		t.Fatalf("id=%d sites=%d", id, cluster.Sites())
	}
	devNew, err := cluster.Device(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := devNew.ReadBlock(ctx, 0)
	if err != nil || string(got[:5]) != "grown" {
		t.Fatalf("read at grown site = %q, %v", got[:5], err)
	}
	if err := cluster.Remove(ctx, false); err != nil {
		t.Fatal(err)
	}
	if cluster.Sites() != 2 {
		t.Fatalf("sites after remove = %d", cluster.Sites())
	}
}

func TestWitnessesViaPublicAPI(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(3, relidev.Voting, relidev.WithWitnesses(1),
		relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 4}))
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := cluster.Device(0)
	payload := make([]byte, 64)
	copy(payload, "w")
	if err := dev.WriteBlock(ctx, 0, payload); err != nil {
		t.Fatal(err)
	}
	// Data site + witness quorum survives a data-site failure.
	if err := cluster.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadBlock(ctx, 0); err != nil {
		t.Fatalf("read with data+witness quorum: %v", err)
	}
	// Witnesses are rejected outside the voting scheme.
	if _, err := relidev.New(3, relidev.NaiveAvailableCopy, relidev.WithWitnesses(1)); err == nil {
		t.Fatal("witnesses accepted for naive scheme")
	}
	if _, err := relidev.New(2, relidev.Voting, relidev.WithWitnesses(2)); err == nil {
		t.Fatal("all-witness cluster accepted")
	}
}

func TestAvailabilityFacade(t *testing.T) {
	// The public formulas reproduce the §4 identities.
	na2, err := relidev.Availability(relidev.NaiveAvailableCopy, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := relidev.Availability(relidev.Voting, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(na2-v3) > 1e-12 {
		t.Fatalf("A_NA(2)=%v != A_V(3)=%v", na2, v3)
	}
	ac3, err := relidev.Availability(relidev.AvailableCopy, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	v6, err := relidev.Availability(relidev.Voting, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ac3 <= v6 {
		t.Fatalf("A_A(3)=%v <= A_V(6)=%v", ac3, v6)
	}
	if _, err := relidev.Availability(relidev.Scheme(9), 3, 0.1); err == nil {
		t.Fatal("accepted unknown scheme")
	}
	if got := relidev.SiteAvailability(0.25); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("SiteAvailability = %v", got)
	}
}

func TestTrafficCostsFacade(t *testing.T) {
	for _, multicast := range []bool{true, false} {
		v, err := relidev.TrafficCosts(relidev.Voting, 5, 0.05, multicast)
		if err != nil {
			t.Fatal(err)
		}
		na, err := relidev.TrafficCosts(relidev.NaiveAvailableCopy, 5, 0.05, multicast)
		if err != nil {
			t.Fatal(err)
		}
		if na.Write >= v.Write {
			t.Fatalf("multicast=%v: naive write %v >= voting write %v", multicast, na.Write, v.Write)
		}
	}
	if _, err := relidev.TrafficCosts(relidev.Scheme(9), 5, 0.05, true); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

// A remote site on the segment store with group commit survives a
// stop/restart cycle: the store is replayed from its segments.
func TestRemoteSegmentStorePersists(t *testing.T) {
	ctx := context.Background()
	geom := relidev.Geometry{BlockSize: 128, NumBlocks: 16}
	dir := t.TempDir()
	open := func() *relidev.RemoteSite {
		t.Helper()
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self:             0,
			Peers:            map[int]string{0: "127.0.0.1:0"},
			Scheme:           relidev.NaiveAvailableCopy,
			Geometry:         geom,
			StoreDir:         filepath.Join(dir, "site0"),
			GroupCommitBatch: 8,
			Timeout:          time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	payload := make([]byte, 128)
	copy(payload, "durable append")
	if err := s.Device().WriteBlock(ctx, 3, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := open()
	defer re.Close()
	got, err := re.Device().ReadBlock(ctx, 3)
	if err != nil || string(got[:14]) != "durable append" {
		t.Fatalf("read after segment-store restart = %q, %v", got[:14], err)
	}
}

// A full three-process-shaped deployment in one test process: three
// RemoteSites over loopback TCP, writes at one site, reads at another,
// crash and recovery of a third.
func TestRemoteDeploymentEndToEnd(t *testing.T) {
	for _, scheme := range allSchemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			ctx := context.Background()
			geom := relidev.Geometry{BlockSize: 128, NumBlocks: 16}

			// Reserve addresses by starting sites one by one on :0 and
			// rebuilding the peer map afterwards. Simpler: fixed
			// ephemeral-port discovery via two passes.
			addrs := make(map[int]string, 3)
			var boot []*relidev.RemoteSite
			for i := 0; i < 3; i++ {
				s, err := relidev.OpenRemote(relidev.RemoteConfig{
					Self:     i,
					Peers:    map[int]string{i: "127.0.0.1:0"},
					Scheme:   scheme,
					Geometry: geom,
				})
				if err != nil {
					t.Fatal(err)
				}
				addrs[i] = s.Addr()
				boot = append(boot, s)
			}
			for _, s := range boot {
				s.Close()
			}
			sites := make([]*relidev.RemoteSite, 3)
			stores := make([]string, 3)
			dir := t.TempDir()
			for i := 0; i < 3; i++ {
				stores[i] = filepath.Join(dir, fmt.Sprintf("s%d.img", i))
				s, err := relidev.OpenRemote(relidev.RemoteConfig{
					Self:      i,
					Peers:     addrs,
					Scheme:    scheme,
					Geometry:  geom,
					StorePath: stores[i],
					Timeout:   time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				sites[i] = s
				defer func() { s.Close() }()
			}

			payload := make([]byte, 128)
			copy(payload, "across processes")
			if err := sites[0].Device().WriteBlock(ctx, 5, payload); err != nil {
				t.Fatalf("remote write: %v", err)
			}
			got, err := sites[2].Device().ReadBlock(ctx, 5)
			if err != nil {
				t.Fatalf("remote read: %v", err)
			}
			if string(got[:16]) != "across processes" {
				t.Fatalf("read = %q", got[:16])
			}

			// Crash site 2 (close its server), write again, restart it
			// comatose from its store file and recover.
			if err := sites[2].Close(); err != nil {
				t.Fatal(err)
			}
			copy(payload, "written while down")
			if err := sites[0].Device().WriteBlock(ctx, 5, payload); err != nil {
				t.Fatalf("write with a site down: %v", err)
			}
			restarted, err := relidev.OpenRemote(relidev.RemoteConfig{
				Self:      2,
				Peers:     addrs,
				Scheme:    scheme,
				Geometry:  geom,
				StorePath: stores[2],
				Timeout:   time.Second,
				Comatose:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer restarted.Close()
			if err := restarted.Recover(ctx); err != nil {
				t.Fatalf("recover: %v", err)
			}
			if restarted.State() != relidev.StateAvailable {
				t.Fatalf("state = %v", restarted.State())
			}
			got, err = restarted.Device().ReadBlock(ctx, 5)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[:18]) != "written while down" {
				t.Fatalf("read after recovery = %q", got[:18])
			}
		})
	}
}

func TestRemoteConfigValidation(t *testing.T) {
	if _, err := relidev.OpenRemote(relidev.RemoteConfig{Self: 0, Scheme: relidev.Voting}); err == nil {
		t.Fatal("accepted empty peers")
	}
	if _, err := relidev.OpenRemote(relidev.RemoteConfig{
		Self:   1,
		Peers:  map[int]string{0: "127.0.0.1:0"},
		Scheme: relidev.Voting,
	}); err == nil {
		t.Fatal("accepted peers without self")
	}
	if _, err := relidev.OpenRemote(relidev.RemoteConfig{
		Self:   0,
		Peers:  map[int]string{0: "127.0.0.1:0"},
		Scheme: relidev.Scheme(77),
	}); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

func TestErrMustWaitSurfaces(t *testing.T) {
	// A lone naive site restarted comatose in a 2-site group whose peer
	// is down must wait.
	geom := relidev.Geometry{BlockSize: 128, NumBlocks: 4}
	s, err := relidev.OpenRemote(relidev.RemoteConfig{
		Self:     0,
		Peers:    map[int]string{0: "127.0.0.1:0", 1: "127.0.0.1:1"},
		Scheme:   relidev.NaiveAvailableCopy,
		Geometry: geom,
		Comatose: true,
		Timeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Recover(context.Background()); !errors.Is(err, relidev.ErrMustWait) {
		t.Fatalf("recover = %v, want ErrMustWait", err)
	}
	if s.State() != relidev.StateComatose {
		t.Fatalf("state = %v, want comatose", s.State())
	}
}

// TestMeteringSurface exercises the public observability API: a metered
// cluster exposes its counters through MetricsJSON and the debug HTTP
// handler, while an unmetered cluster reports ErrNotMetered.
func TestMeteringSurface(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(3, relidev.Voting,
		relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 8}),
		relidev.WithTracing(128))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := cluster.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	if err := dev.WriteBlock(ctx, 2, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadBlock(ctx, 2); err != nil {
		t.Fatal(err)
	}

	data, err := cluster.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"relidev_op_completions_total", `"scheme":"voting"`, `"op":"write"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("MetricsJSON missing %s:\n%s", want, data)
		}
	}

	h, err := cluster.DebugHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `relidev_op_attempts_total{op="write",scheme="voting",site="site0"} 1`) {
		t.Errorf("prometheus exposition missing the write series:\n%s", body)
	}

	plain, err := relidev.New(3, relidev.Voting)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.MetricsJSON(); !errors.Is(err, relidev.ErrNotMetered) {
		t.Fatalf("MetricsJSON on unmetered cluster = %v, want ErrNotMetered", err)
	}
	if _, err := plain.DebugHandler(); !errors.Is(err, relidev.ErrNotMetered) {
		t.Fatalf("DebugHandler on unmetered cluster = %v, want ErrNotMetered", err)
	}
}

// TestTraceTreeSurface exercises the public distributed-tracing API: a
// traced cluster stitches each operation into a complete span tree,
// TraceTree resolves one by ID, and clusters without tracing report
// ErrNotMetered.
func TestTraceTreeSurface(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(3, relidev.AvailableCopy,
		relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 8}),
		relidev.WithTracing(256))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := cluster.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	if err := dev.WriteBlock(ctx, 2, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadBlock(ctx, 2); err != nil {
		t.Fatal(err)
	}

	trees, err := cluster.TraceTrees()
	if err != nil {
		t.Fatal(err)
	}
	var write *relidev.TraceTree
	for _, tr := range trees {
		if tr.Root != nil && tr.Root.Kind == "op" && tr.Root.Op == "write" {
			if write != nil {
				t.Fatal("more than one write tree stitched")
			}
			write = tr
		}
	}
	if write == nil {
		t.Fatalf("no write tree among %d traces", len(trees))
	}
	if !write.Complete() {
		t.Fatalf("write tree incomplete: %+v", write)
	}
	if write.Root.Site != 0 || write.Root.TraceID != write.TraceID {
		t.Fatalf("root = %+v", write.Root)
	}
	if len(write.Sites) == 0 || write.Sites[0] != 0 {
		t.Fatalf("sites = %v", write.Sites)
	}

	got, err := cluster.TraceTree(write.TraceID)
	if err != nil || got == nil || got.TraceID != write.TraceID || got.Spans != write.Spans {
		t.Fatalf("TraceTree(%d) = %+v, %v", write.TraceID, got, err)
	}
	if absent, err := cluster.TraceTree(0xdead); err != nil || absent != nil {
		t.Fatalf("absent trace = %+v, %v", absent, err)
	}

	metered, err := relidev.New(3, relidev.AvailableCopy, relidev.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metered.TraceTrees(); !errors.Is(err, relidev.ErrNotMetered) {
		t.Fatalf("TraceTrees without tracing = %v, want ErrNotMetered", err)
	}
}

// TestHealthSurface exercises the public health engine: default rules,
// the on-demand verdict, the /healthz endpoint, and the unconfigured
// error paths.
func TestHealthSurface(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(3, relidev.Voting,
		relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 8}),
		relidev.WithMetering(),
		relidev.WithHealthRules(relidev.DefaultHealthRules(relidev.Voting, 3, nil)...))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := cluster.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	if err := dev.WriteBlock(ctx, 2, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadBlock(ctx, 2); err != nil {
		t.Fatal(err)
	}

	v, err := cluster.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rules) != 4 {
		t.Fatalf("verdict has %d rules, want the 4 defaults: %+v", len(v.Rules), v)
	}
	if v.Overall != relidev.HealthOK {
		t.Fatalf("fresh healthy cluster reports %v: %+v", v.Overall, v.Rules)
	}

	h, err := cluster.DebugHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d:\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"overall": "ok"`) {
		t.Errorf("/healthz body lacks the overall verdict:\n%s", body)
	}

	// Metered but no rules: typed error, and /healthz stays unmounted
	// (the mux serves /metrics at "/" so any path answers, but the
	// health handler specifically is absent — probe via Health()).
	noRules, err := relidev.New(3, relidev.Voting, relidev.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noRules.Health(); !errors.Is(err, relidev.ErrNoHealthRules) {
		t.Fatalf("Health without rules = %v, want ErrNoHealthRules", err)
	}

	plain, err := relidev.New(3, relidev.Voting)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Health(); !errors.Is(err, relidev.ErrNotMetered) {
		t.Fatalf("Health unmetered = %v, want ErrNotMetered", err)
	}
}

// TestCriticalPathSurface exercises the public attribution API: the
// profile covers the driven ops with a partition that matches the
// measured latency, and the /profile endpoint serves both renderings.
func TestCriticalPathSurface(t *testing.T) {
	ctx := context.Background()
	cluster, err := relidev.New(3, relidev.Voting,
		relidev.WithGeometry(relidev.Geometry{BlockSize: 64, NumBlocks: 8}),
		relidev.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := cluster.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if err := dev.WriteBlock(ctx, relidev.Index(i), payload); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.ReadBlock(ctx, relidev.Index(i)); err != nil {
			t.Fatal(err)
		}
	}

	p, err := cluster.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 2 {
		t.Fatalf("profile has %d op aggregates, want write+read: %+v", len(p.Ops), p.Ops)
	}
	for _, op := range p.Ops {
		if op.Count != 4 {
			t.Errorf("%s/%s count = %d, want 4", op.Scheme, op.Op, op.Count)
		}
		if op.Coverage < 0.99 || op.Coverage > 1.01 {
			t.Errorf("%s/%s coverage = %.4f, want within 1%% of 1.0", op.Scheme, op.Op, op.Coverage)
		}
	}
	if flame := p.Flame(); !strings.Contains(flame, "voting/write") {
		t.Errorf("Flame() lacks the write block:\n%s", flame)
	}

	h, err := cluster.DebugHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/profile?format=flame")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "critical path — phase attribution") {
		t.Errorf("/profile?format=flame = %d:\n%s", resp.StatusCode, body)
	}

	plain, err := relidev.New(3, relidev.Voting)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.CriticalPath(); !errors.Is(err, relidev.ErrNotMetered) {
		t.Fatalf("CriticalPath unmetered = %v, want ErrNotMetered", err)
	}
}

// TestRemoteObservabilitySurface: a metered remote site with health
// rules serves /healthz, /debug/flight, and /profile on its debug
// handler, and answers Health()/CriticalPath() directly.
func TestRemoteObservabilitySurface(t *testing.T) {
	ctx := context.Background()
	geom := relidev.Geometry{BlockSize: 64, NumBlocks: 8}
	addrs := make(map[int]string, 2)
	var boot []*relidev.RemoteSite
	for i := 0; i < 2; i++ {
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self: i, Peers: map[int]string{i: "127.0.0.1:0"}, Scheme: relidev.NaiveAvailableCopy, Geometry: geom,
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = s.Addr()
		boot = append(boot, s)
	}
	for _, s := range boot {
		s.Close()
	}
	sites := make([]*relidev.RemoteSite, 2)
	for i := 0; i < 2; i++ {
		s, err := relidev.OpenRemote(relidev.RemoteConfig{
			Self:        i,
			Peers:       addrs,
			Scheme:      relidev.NaiveAvailableCopy,
			Geometry:    geom,
			Timeout:     time.Second,
			Metered:     true,
			HealthRules: relidev.DefaultHealthRules(relidev.NaiveAvailableCopy, 2, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = s
		defer func() { s.Close() }()
	}

	payload := make([]byte, 64)
	if err := sites[0].Device().WriteBlock(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := sites[1].Device().ReadBlock(ctx, 1); err != nil {
		t.Fatal(err)
	}

	v, err := sites[0].Health()
	if err != nil {
		t.Fatal(err)
	}
	if v.Overall >= relidev.HealthCritical {
		t.Fatalf("healthy site reports critical: %+v", v.Rules)
	}
	p, err := sites[0].CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) == 0 {
		t.Fatal("remote critical path profile is empty")
	}

	h, err := sites[0].DebugHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	for path, want := range map[string]string{
		"/healthz":      `"overall"`,
		"/debug/flight": `"trigger": "http request"`,
		"/profile":      `"ops"`,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d:\n%s", path, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s body lacks %q:\n%s", path, want, body)
		}
	}
}
