// Benchmarks regenerate the paper's evaluation: one benchmark per figure
// (9-12) producing the same series the paper plots, plus per-operation
// protocol benchmarks whose msgs/op metrics are the measured counterpart
// of the §5 cost model, and ablation benchmarks for the design choices
// called out in DESIGN.md §5.
//
// Run: go test -bench=. -benchmem
//
// The interesting output is the custom metrics: msgs/write, msgs/read,
// msgs/recovery, and the figure-level summary metrics. Absolute ns/op
// mostly measures the in-process simulation plumbing.
package relidev_test

import (
	"context"
	"fmt"
	"testing"

	"relidev"
	"relidev/internal/analysis"
	"relidev/internal/cache"
	"relidev/internal/core"
	"relidev/internal/figures"
	"relidev/internal/markov"
	"relidev/internal/minifs"
	"relidev/internal/sim"
	"relidev/internal/simnet"
)

// --- Figure benchmarks: each iteration regenerates the figure's data ---

// BenchmarkFigure9 regenerates Figure 9 (availability of 3 available /
// naive copies vs 6 voting copies over ρ ∈ [0, 0.20]) and reports the
// curves' separation at ρ = 0.20 — the paper's headline availability gap.
func BenchmarkFigure9(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Series[0].Y) - 1
	b.ReportMetric(fig.Series[0].Y[last], "A_AC(3)@rho0.2")
	b.ReportMetric(fig.Series[1].Y[last], "A_NA(3)@rho0.2")
	b.ReportMetric(fig.Series[2].Y[last], "A_V(6)@rho0.2")
}

// BenchmarkFigure10 regenerates Figure 10 (4 copies vs 8 voting copies).
func BenchmarkFigure10(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Series[0].Y) - 1
	b.ReportMetric(fig.Series[0].Y[last], "A_AC(4)@rho0.2")
	b.ReportMetric(fig.Series[1].Y[last], "A_NA(4)@rho0.2")
	b.ReportMetric(fig.Series[2].Y[last], "A_V(8)@rho0.2")
}

// BenchmarkFigure11 regenerates Figure 11 (multi-cast traffic per one
// write + x reads, ρ = 0.05) and reports the voting:naive cost ratio at
// n = 5, x = 2.5-ish (the 2:1 series): the §5 headline.
func BenchmarkFigure11(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Figure11()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Series: voting x=1,2,4; AC; naive. X grid is n = 2..8; n=5 is idx 3.
	b.ReportMetric(fig.Series[1].Y[3], "voting(x=2)@n5")
	b.ReportMetric(fig.Series[3].Y[3], "ac@n5")
	b.ReportMetric(fig.Series[4].Y[3], "naive@n5")
	b.ReportMetric(fig.Series[1].Y[3]/fig.Series[4].Y[3], "voting/naive@n5")
}

// BenchmarkFigure12 regenerates Figure 12 (unique addressing).
func BenchmarkFigure12(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Figure12()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[1].Y[3], "voting(x=2)@n5")
	b.ReportMetric(fig.Series[3].Y[3], "ac@n5")
	b.ReportMetric(fig.Series[4].Y[3], "naive@n5")
}

// BenchmarkFigure9Simulated validates Figure 9 stochastically: a
// discrete-event run of the Figure 7 state machine at ρ = 0.20.
func BenchmarkFigure9Simulated(b *testing.B) {
	var avail float64
	for i := 0; i < b.N; i++ {
		m, err := sim.NewACModel(3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.SimulateAvailability(m, 3, 0.20, 50000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		avail = res.Availability
	}
	analytic, _ := analysis.AvailabilityAC(3, 0.20)
	b.ReportMetric(avail, "A_sim")
	b.ReportMetric(analytic, "A_analytic")
}

// BenchmarkFigureWitness regenerates the witnesses extension figure and
// reports the headline: 2 copies + 1 witness matches 3 full copies.
func BenchmarkFigureWitness(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.FigureWitness()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Series[0].Y) - 1
	b.ReportMetric(fig.Series[0].Y[last], "A_3copies@rho0.2")
	b.ReportMetric(fig.Series[1].Y[last], "A_2copies+1wit@rho0.2")
}

// BenchmarkFigureEqualAvailability regenerates the §5 equal-availability
// comparison and reports the voting:naive cost ratio at four nines.
func BenchmarkFigureEqualAvailability(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.FigureEqualAvailability()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Series: voting, AC, naive; X index 2 is the 0.9999 target.
	b.ReportMetric(fig.Series[0].Y[2], "voting@4nines")
	b.ReportMetric(fig.Series[2].Y[2], "naive@4nines")
	b.ReportMetric(fig.Series[0].Y[2]/fig.Series[2].Y[2], "voting/naive@4nines")
}

// --- Per-operation protocol benchmarks (measured §5 costs) ---

func benchCluster(b *testing.B, scheme relidev.Scheme, n int, unicast bool) (*relidev.Cluster, relidev.Device) {
	b.Helper()
	opts := []relidev.Option{
		relidev.WithGeometry(relidev.Geometry{BlockSize: 512, NumBlocks: 64}),
	}
	if unicast {
		opts = append(opts, relidev.WithUnicastNetwork())
	}
	cluster, err := relidev.New(n, scheme, opts...)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := cluster.Device(0)
	if err != nil {
		b.Fatal(err)
	}
	return cluster, dev
}

func benchWrite(b *testing.B, scheme relidev.Scheme, unicast bool) {
	const n = 5
	cluster, dev := benchCluster(b, scheme, n, unicast)
	ctx := context.Background()
	payload := make([]byte, 512)
	cluster.ResetTraffic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0] = byte(i)
		if err := dev.WriteBlock(ctx, relidev.Index(i%64), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cluster.Traffic().Transmissions)/float64(b.N), "msgs/write")
}

func benchRead(b *testing.B, scheme relidev.Scheme, unicast bool) {
	const n = 5
	cluster, dev := benchCluster(b, scheme, n, unicast)
	ctx := context.Background()
	payload := make([]byte, 512)
	for i := 0; i < 64; i++ {
		if err := dev.WriteBlock(ctx, relidev.Index(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	cluster.ResetTraffic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.ReadBlock(ctx, relidev.Index(i%64)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cluster.Traffic().Transmissions)/float64(b.N), "msgs/read")
}

// BenchmarkWrite measures per-write latency and message cost for every
// scheme in both network flavours — the measured counterpart of the §5
// write column.
func BenchmarkWrite(b *testing.B) {
	for _, scheme := range []relidev.Scheme{relidev.Voting, relidev.AvailableCopy, relidev.NaiveAvailableCopy} {
		for _, unicast := range []bool{false, true} {
			name := fmt.Sprintf("%v/%s", scheme, netName(unicast))
			b.Run(name, func(b *testing.B) { benchWrite(b, scheme, unicast) })
		}
	}
}

// BenchmarkRead measures per-read cost; available copy schemes read
// locally (0 msgs), voting collects a quorum every time.
func BenchmarkRead(b *testing.B) {
	for _, scheme := range []relidev.Scheme{relidev.Voting, relidev.AvailableCopy, relidev.NaiveAvailableCopy} {
		for _, unicast := range []bool{false, true} {
			name := fmt.Sprintf("%v/%s", scheme, netName(unicast))
			b.Run(name, func(b *testing.B) { benchRead(b, scheme, unicast) })
		}
	}
}

func netName(unicast bool) string {
	if unicast {
		return "unicast"
	}
	return "multicast"
}

// BenchmarkRecovery measures a fail + restart cycle of one site: voting
// is free (lazy block-level recovery), the available copy schemes pay
// the status broadcast plus the version-vector exchange.
func BenchmarkRecovery(b *testing.B) {
	for _, scheme := range []relidev.Scheme{relidev.Voting, relidev.AvailableCopy, relidev.NaiveAvailableCopy} {
		b.Run(scheme.String(), func(b *testing.B) {
			cluster, dev := benchCluster(b, scheme, 4, false)
			ctx := context.Background()
			payload := make([]byte, 512)
			cluster.ResetTraffic()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cluster.Fail(2); err != nil {
					b.Fatal(err)
				}
				// One write lands while the site is down, so recovery has
				// a block to repair.
				payload[0] = byte(i)
				if err := dev.WriteBlock(ctx, 0, payload); err != nil {
					b.Fatal(err)
				}
				if err := cluster.Restart(ctx, 2); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Subtract the write traffic to isolate recovery cost.
			writeCost, err := relidev.TrafficCosts(scheme, 4, 0, true)
			if err != nil {
				b.Fatal(err)
			}
			total := float64(cluster.Traffic().Transmissions) / float64(b.N)
			b.ReportMetric(total-writeCost.Write+1, "msgs/cycle~") // +1: write saw one site down
			b.ReportMetric(total, "msgs/total")
		})
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationVotingRecovery compares the paper's lazy block-level
// voting recovery (free) against the eager file-level variant.
func BenchmarkAblationVotingRecovery(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		opts := []relidev.Option{relidev.WithGeometry(relidev.Geometry{BlockSize: 512, NumBlocks: 64})}
		if eager {
			name = "eager"
			opts = append(opts, relidev.WithEagerVotingRecovery())
		}
		b.Run(name, func(b *testing.B) {
			cluster, err := relidev.New(4, relidev.Voting, opts...)
			if err != nil {
				b.Fatal(err)
			}
			dev, _ := cluster.Device(0)
			ctx := context.Background()
			payload := make([]byte, 512)
			// Dirty every block so eager recovery has work to do.
			for i := 0; i < 64; i++ {
				if err := dev.WriteBlock(ctx, relidev.Index(i), payload); err != nil {
					b.Fatal(err)
				}
			}
			var recoveryMsgs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cluster.Fail(2); err != nil {
					b.Fatal(err)
				}
				payload[0] = byte(i)
				if err := dev.WriteBlock(ctx, relidev.Index(i%64), payload); err != nil {
					b.Fatal(err)
				}
				before := cluster.Traffic().Transmissions
				if err := cluster.Restart(ctx, 2); err != nil {
					b.Fatal(err)
				}
				recoveryMsgs += cluster.Traffic().Transmissions - before
			}
			b.StopTimer()
			b.ReportMetric(float64(recoveryMsgs)/float64(b.N), "msgs/recovery")
		})
	}
}

// BenchmarkAblationImmediateW compares delayed (piggybacked) and
// immediate was-available set propagation in the available copy scheme.
func BenchmarkAblationImmediateW(b *testing.B) {
	for _, immediate := range []bool{false, true} {
		name := "delayed"
		opts := []relidev.Option{relidev.WithGeometry(relidev.Geometry{BlockSize: 512, NumBlocks: 64})}
		if immediate {
			name = "immediate"
			opts = append(opts, relidev.WithImmediateWasAvailable())
		}
		b.Run(name, func(b *testing.B) {
			cluster, err := relidev.New(4, relidev.AvailableCopy, opts...)
			if err != nil {
				b.Fatal(err)
			}
			dev, _ := cluster.Device(0)
			ctx := context.Background()
			payload := make([]byte, 512)
			cluster.ResetTraffic()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Membership changes every other iteration, which is where
				// the two variants differ.
				if i%2 == 0 {
					if err := cluster.Fail(3); err != nil {
						b.Fatal(err)
					}
				}
				payload[0] = byte(i)
				if err := dev.WriteBlock(ctx, relidev.Index(i%64), payload); err != nil {
					b.Fatal(err)
				}
				if i%2 == 0 {
					if err := cluster.Restart(ctx, 3); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(cluster.Traffic().Transmissions)/float64(b.N), "msgs/iter")
		})
	}
}

// BenchmarkCachedVotingRead shows the Figure 1 buffer-cache effect: a
// hot read served from the cache skips the quorum collection entirely.
func BenchmarkCachedVotingRead(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			cl, err := core.NewCluster(core.ClusterConfig{
				Sites:    3,
				Geometry: relidev.Geometry{BlockSize: 512, NumBlocks: 64},
				Scheme:   core.Voting,
			})
			if err != nil {
				b.Fatal(err)
			}
			inner, _ := cl.Device(0)
			var dev core.Device = inner
			if cached {
				dev, err = cache.New(inner, 64)
				if err != nil {
					b.Fatal(err)
				}
			}
			payload := make([]byte, 512)
			if err := dev.WriteBlock(ctx, 0, payload); err != nil {
				b.Fatal(err)
			}
			cl.Network().ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dev.ReadBlock(ctx, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(cl.Network().Stats().Transmissions)/float64(b.N), "msgs/read")
		})
	}
}

// --- Substrate benchmarks ---

// BenchmarkMarkovSteadyState solves the Figure 7 chain for n = 8 (16
// states) — the numeric engine behind every availability figure.
func BenchmarkMarkovSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chain, avail, err := analysis.ACChain(8, 0.1, 1)
		if err != nil {
			b.Fatal(err)
		}
		pi, err := chain.SteadyState()
		if err != nil {
			b.Fatal(err)
		}
		_ = chain.Probe(pi, avail)
	}
}

// BenchmarkMarkovSolverScaling solves growing chains.
func BenchmarkMarkovSolverScaling(b *testing.B) {
	for _, states := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("states%d", states), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := markov.NewChain(states)
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < states-1; s++ {
					c.SetRate(s, s+1, 1)
					c.SetRate(s+1, s, 0.5)
				}
				if _, err := c.SteadyState(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinifsOverReliableDevice measures whole-file writes through
// the file system onto a replicated device.
func BenchmarkMinifsOverReliableDevice(b *testing.B) {
	for _, kind := range []core.SchemeKind{core.Voting, core.NaiveAvailableCopy} {
		b.Run(kind.String(), func(b *testing.B) {
			ctx := context.Background()
			cl, err := core.NewCluster(core.ClusterConfig{
				Sites:    3,
				Geometry: relidev.Geometry{BlockSize: 512, NumBlocks: 1024},
				Scheme:   kind,
				Mode:     simnet.Multicast,
			})
			if err != nil {
				b.Fatal(err)
			}
			dev, _ := cl.Device(0)
			fs, err := minifs.Mkfs(ctx, dev)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fs.WriteFile(ctx, "/bench.dat", data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatedTrafficRun measures the full concrete traffic
// experiment that backs the EXPERIMENTS.md tables.
func BenchmarkSimulatedTrafficRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateTraffic(context.Background(), sim.TrafficConfig{
			Scheme: core.NaiveAvailableCopy,
			Sites:  5,
			Rho:    0.05,
			Ops:    500,
			Seed:   int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
