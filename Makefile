GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race lint lint-sweep fuzz-smoke chaos-short repair-race obs-race

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bin/relidevlint: $(wildcard cmd/relidevlint/*.go internal/lint/*.go)
	$(GO) build -o $@ ./cmd/relidevlint

# lint runs the repo's own analyzer suite (locking, determinism,
# transport-error, context, goroutine-lifetime, atomic-discipline, and
# wire-registry invariants — see DESIGN.md §9 and §14) over every
# package, then govulncheck when it is installed (CI installs it;
# offline dev boxes skip it).
lint: bin/relidevlint
	$(GO) vet -vettool=$(CURDIR)/bin/relidevlint ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping vulnerability scan (CI runs it)"; \
	fi

# lint-sweep runs the analyzer suite repo-wide without failing the
# build and prints per-analyzer finding counts — the zero lines are the
# point: they show each analyzer ran and found the tree clean.
lint-sweep: bin/relidevlint
	@out=$$($(GO) vet -vettool=$(CURDIR)/bin/relidevlint ./... 2>&1 || true); \
	printf '%s\n' "$$out" | grep '\[relidevlint/' || true; \
	for a in lockcheck detcheck transportcheck ctxcheck leakcheck atomiccheck wirecheck; do \
		n=$$(printf '%s\n' "$$out" | grep -c "\[relidevlint/$$a\]" || true); \
		printf 'lint-sweep: %-14s %s finding(s)\n' "$$a" "$$n"; \
	done

# fuzz-smoke gives each property fuzzer a short budget — enough to shake
# out regressions in the quorum arithmetic, the was-available closure,
# and the chaos payload codec without stalling CI.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzVersionQuorum -fuzztime=$(FUZZTIME) ./internal/voting
	$(GO) test -run=NONE -fuzz=FuzzClosure -fuzztime=$(FUZZTIME) ./internal/availcopy
	$(GO) test -run=NONE -fuzz=FuzzPayloadRoundTrip -fuzztime=$(FUZZTIME) ./internal/chaos

# repair-race hammers the background repairer's concurrency surface:
# foreground writes racing repair installs, mid-stream donor failover,
# and the paged recovery handler, all under the race detector.
repair-race:
	$(GO) test -race -count=2 ./internal/repair ./internal/rpcnet
	$(GO) test -race -run 'TestHandleRecovery|TestHandleRepair|TestApplyRepair' ./internal/site
	$(GO) test -race -run 'TestDonorKill|TestRepair' ./internal/chaos

# chaos-short replays the three seeded schedules CI runs, under the race
# detector, one per consistency scheme. Each run carries the
# observability layer, checks the §5 bracket and §4 availability
# conformance invariants, runs the background repairer after every
# recovery (bounded time-to-freshness is a standing invariant), and
# leaves its metrics snapshot, availability verdict, time-to-freshness
# samples, sealed flight-recorder dump, and final SLO evaluation (with
# the alert transition log — empty on a clean run, fire/clear stamped
# on a degraded one) in artifacts/ (CI uploads all five; the flight
# dump is null unless an invariant violation or a critical health
# breach sealed it).
chaos-short:
	mkdir -p artifacts
	$(GO) run -race ./cmd/chaos -scheme=voting -seed=7 -events=150 -ops-per-event=4 -metrics-out=artifacts/chaos-voting-metrics.json -avail-out=artifacts/chaos-voting-avail.json -ttf-out=artifacts/chaos-voting-ttf.json -flight-out=artifacts/chaos-voting-flight.json -slo-out=artifacts/chaos-voting-slo.json
	$(GO) run -race ./cmd/chaos -scheme=ac     -seed=7 -events=150 -ops-per-event=4 -metrics-out=artifacts/chaos-ac-metrics.json -avail-out=artifacts/chaos-ac-avail.json -ttf-out=artifacts/chaos-ac-ttf.json -flight-out=artifacts/chaos-ac-flight.json -slo-out=artifacts/chaos-ac-slo.json
	$(GO) run -race ./cmd/chaos -scheme=nac    -seed=7 -events=150 -ops-per-event=4 -metrics-out=artifacts/chaos-nac-metrics.json -avail-out=artifacts/chaos-nac-avail.json -ttf-out=artifacts/chaos-nac-ttf.json -flight-out=artifacts/chaos-nac-flight.json -slo-out=artifacts/chaos-nac-slo.json

# obs-race hammers the new observability surfaces — the health engine's
# hysteresis state machines and the flight recorder's ring — under the
# race detector, alongside the phase-attribution integration tests.
obs-race:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'TestHealthSurface|TestCriticalPathSurface|TestRemoteObservabilitySurface' .
